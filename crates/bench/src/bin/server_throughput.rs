//! Throughput/latency benchmark for `algst-server`: the gen-suite
//! workload pushed through the batch engine at several worker counts,
//! then through the full TCP wire path under concurrent clients.
//!
//! ```text
//! cargo run --release -p algst-bench --bin server_throughput -- \
//!     [--requests 200000] [--cases 60] [--seed 1] [--batch 256] \
//!     [--workers 1,4,8] [--json BENCH_server.json] \
//!     [--clients 8] [--pipeline 32] [--wire-requests 40000] \
//!     [--wire-workers 4] [--no-wire] [--repeat 3] \
//!     [--cold-heavy-requests 50000] [--fresh-permille 750] [--no-cold-heavy] \
//!     [--tenants 3] [--run-id ID]
//! ```
//!
//! **Engine mode** (always runs): for each worker count the engine
//! starts **cold** (fresh `SharedStore`), replays the same reproducible
//! request stream (`algst_gen::workload`: every suite pair once, then
//! uniform re-sampling with random orientation — the warm-dominated
//! shape of real traffic), checks every verdict against the generator's
//! ground truth, and reports requests/second plus per-request sojourn
//! latency percentiles (p50/p95/p99, measured submit→response per
//! batch). Each config also reports the store's **contention profile**
//! (snapshot generation, installs, slow-path interns, store/cache lock
//! acquisitions), so lock-freedom of the warm path shows up in the
//! numbers, not just in unit tests. Each config runs `--repeat` times
//! (default 3) and reports its best run: the streams are identical and
//! the engines start cold, so inter-repeat spread is host scheduling
//! noise, which would otherwise dominate worker-scaling comparisons on
//! small shared hosts.
//!
//! **Cold-heavy mode** (on by default): the same sweep over a
//! `cold_heavy_workload` — a high fresh-type ratio (default 750‰ of
//! requests query a never-seen-before pair), the anti-warm workload a
//! multi-tenant frontier sees. This keeps the slow path honest: the win
//! on warm traffic must not come from pessimizing cold interning.
//!
//! **Wire mode** (`--clients N --pipeline D`, on by default): the same
//! workload is dealt round-robin onto `N` real TCP clients, each
//! pipelining up to `D` requests deep over its own connection, against
//! two server front-ends sharing the engine design:
//! * `sequential` — a faithful replica of the pre-concurrency wire
//!   path: one connection served at a time (accept → serve to EOF →
//!   accept next, so client `k+1` waits for client `k`) and no
//!   `TCP_NODELAY` on the accepted socket, exactly as the old listener
//!   behaved — on loopback the Nagle/delayed-ACK interaction alone
//!   costs tens of milliseconds per pipelined round trip;
//! * `concurrent` — [`algst_server::serve_listener`] as shipped: all
//!   connections served at once over the shared worker pool, accepted
//!   sockets set `TCP_NODELAY`.
//!
//! The speedup is therefore what a fleet of clients actually gains
//! from this server generation, not a pure thread-scaling number —
//! `host_cpus` in the JSON tells you how much parallelism was even
//! available.
//!
//! Both report wire req/s and per-connection latency percentiles
//! (measured client-side, write→response-line per request), and every
//! verdict is checked against ground truth. `wire_speedup` is the
//! concurrent/sequential wall-clock ratio for the identical byte
//! streams.
//!
//! **Multi-tenant mode** (`--tenants N`, default 3; `--tenants 0`
//! disables): the tenant-isolation benchmark. One
//! [`algst_server::TenantRegistry`] with a uniform per-tenant
//! rate-limit hosts `N` tenants over disjoint type universes
//! (`algst_gen::workload::tenant_workloads` — the soak harness's
//! tenant-skew generator). The quiet tenants (`1..N`) each pace a
//! fixed request rate well under the quota and measure per-request
//! latency; tenant `0` is the noisy neighbor, blasting unpaced batches
//! that the token bucket mostly refuses. The mode runs the quiet
//! tenants twice — alone, then beside the noisy tenant — and **fails
//! the bench** unless the noisy tenant was actually throttled, no
//! quiet request was, and the quiet p99 beside the noisy neighbor
//! stays within a generous bound of the solo p99: a throttled tenant
//! must cost its neighbors admission-arithmetic, not latency.
//!
//! Two baselines anchor the engine numbers:
//! * `cold_baseline` — a single thread paying the **full cold cost** per
//!   request (fresh store: intern + normalize + compare), i.e. what
//!   each thread paid before the store was lifted to a shared one;
//! * the 1-worker config — the same engine, serialized.
//!
//! The JSON records `host_cpus`; scaling ratios are only meaningful
//! when the host actually has cores to scale onto, while the
//! `*_vs_cold` ratios show what sharing warm state buys regardless.

use algst_core::store::TypeStore;
use algst_core::Session;
use algst_gen::suite::{build_suite, SuiteKind};
use algst_gen::workload::{cold_heavy_workload, equiv_workload, tenant_workloads, Workload};
use algst_server::engine::BatchReply;
use algst_server::{
    json, serve_listener, serve_session, Engine, ObsOptions, Op, Request, Response, ServeConfig,
    TenantConfig, TenantQuotas, TenantRegistry,
};
use crossbeam::channel::bounded;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

struct Args {
    requests: usize,
    cases: usize,
    seed: u64,
    batch: usize,
    workers: Vec<usize>,
    json_path: Option<String>,
    clients: usize,
    pipeline: usize,
    wire_requests: usize,
    wire_workers: usize,
    wire: bool,
    cold_heavy: bool,
    cold_heavy_requests: Option<usize>,
    fresh_permille: u32,
    repeat: usize,
    tenants: usize,
    run_id: Option<String>,
}

/// Where this result came from: resolved once at startup, recorded in
/// the JSON verbatim. The bench itself reads no wall clock — a run is
/// identified by the injected `--run-id` (CI passes its own), not a
/// timestamp, so identical runs produce identical provenance.
struct Provenance {
    git_rev: String,
    rustc_version: String,
}

impl Provenance {
    fn resolve() -> Provenance {
        let capture = |cmd: &str, cmd_args: &[&str]| -> String {
            std::process::Command::new(cmd)
                .args(cmd_args)
                .output()
                .ok()
                .filter(|o| o.status.success())
                .and_then(|o| String::from_utf8(o.stdout).ok())
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| "unknown".to_owned())
        };
        Provenance {
            git_rev: capture("git", &["rev-parse", "--short", "HEAD"]),
            rustc_version: capture("rustc", &["--version"]),
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 200_000,
        cases: 60,
        seed: 1,
        batch: 256,
        workers: vec![1, 4, 8],
        json_path: Some("BENCH_server.json".to_owned()),
        clients: 8,
        pipeline: 32,
        wire_requests: 40_000,
        wire_workers: 4,
        wire: true,
        cold_heavy: true,
        cold_heavy_requests: None,
        fresh_permille: 750,
        repeat: 3,
        tenants: 3,
        run_id: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match argv[i].as_str() {
            "--requests" => args.requests = value(&mut i).parse().expect("--requests number"),
            "--cases" => args.cases = value(&mut i).parse().expect("--cases number"),
            "--seed" => args.seed = value(&mut i).parse().expect("--seed number"),
            "--batch" => args.batch = value(&mut i).parse().expect("--batch number"),
            "--workers" => {
                args.workers = value(&mut i)
                    .split(',')
                    .map(|w| w.parse().expect("--workers comma-separated numbers"))
                    .collect()
            }
            "--json" => args.json_path = Some(value(&mut i)),
            "--no-json" => args.json_path = None,
            "--clients" => args.clients = value(&mut i).parse().expect("--clients number"),
            "--pipeline" => args.pipeline = value(&mut i).parse().expect("--pipeline number"),
            "--wire-requests" => {
                args.wire_requests = value(&mut i).parse().expect("--wire-requests number")
            }
            "--wire-workers" => {
                args.wire_workers = value(&mut i).parse().expect("--wire-workers number")
            }
            "--no-wire" => args.wire = false,
            "--no-cold-heavy" => args.cold_heavy = false,
            "--cold-heavy-requests" => {
                args.cold_heavy_requests =
                    Some(value(&mut i).parse().expect("--cold-heavy-requests number"))
            }
            "--repeat" => {
                args.repeat = value(&mut i).parse().expect("--repeat number");
                assert!(args.repeat >= 1, "--repeat must be at least 1");
            }
            "--tenants" => {
                args.tenants = value(&mut i).parse().expect("--tenants number");
                assert!(
                    args.tenants != 1,
                    "--tenants needs a noisy and at least one quiet tenant (≥ 2), or 0 to disable"
                );
            }
            "--run-id" => args.run_id = Some(value(&mut i)),
            "--fresh-permille" => {
                args.fresh_permille = value(&mut i).parse().expect("--fresh-permille number");
                assert!(
                    args.fresh_permille <= 1000,
                    "--fresh-permille is ‰, max 1000"
                );
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if args.clients == 0 || args.pipeline == 0 {
        eprintln!("--clients and --pipeline must be at least 1");
        std::process::exit(2);
    }
    args
}

/// Results of one engine configuration.
struct ConfigRun {
    workers: usize,
    elapsed: Duration,
    req_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mismatches: u64,
    warm_hits: u64,
    nodes: u64,
    nrm_hit_rate: f64,
    equiv_hit_rate: f64,
    store_generation: u64,
    snapshot_installs: u64,
    store_slow_path: u64,
    store_locks: u64,
    cache_locks: u64,
    /// Per-stage latency summaries from the metrics registry (name,
    /// count, p50/p95/p99 in µs) — present only for metrics-on runs.
    stages: Vec<(String, u64, f64, f64, f64)>,
}

/// Client-side stats for one wire connection.
struct ClientRun {
    requests: usize,
    req_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mismatches: u64,
}

/// One wire front-end configuration (sequential or concurrent accept).
struct WireRun {
    mode: &'static str,
    elapsed: Duration,
    req_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mismatches: u64,
    per_client: Vec<ClientRun>,
}

/// One tenant's side of a multi-tenant phase.
struct TenantRun {
    name: String,
    /// Requests offered at admission (the noisy tenant offers far more
    /// than its quota grants).
    offered: u64,
    granted: u64,
    throttled: u64,
    mismatches: u64,
    /// Granted requests per second of the tenant's own wall clock.
    req_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    store_bytes: u64,
}

/// The multi-tenant isolation benchmark: quiet tenants solo, then the
/// same quiet tenants beside an unpaced (and therefore throttled)
/// noisy neighbor.
struct MultiTenantRun {
    tenants: usize,
    rate_limit: u64,
    quiet_target_req_per_s: f64,
    quiet_solo: Vec<TenantRun>,
    quiet_shared: Vec<TenantRun>,
    noisy: TenantRun,
    /// Granted requests across all tenants per second of the shared
    /// phase's wall clock.
    aggregate_req_per_s: f64,
    registry_locks: u64,
    quiet_p99_solo_us: f64,
    quiet_p99_shared_us: f64,
    quiet_p99_bound_us: f64,
    isolation_ok: bool,
}

impl MultiTenantRun {
    fn mismatches(&self) -> u64 {
        self.quiet_solo
            .iter()
            .chain(self.quiet_shared.iter())
            .chain(std::iter::once(&self.noisy))
            .map(|t| t.mismatches)
            .sum()
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "building workload: 2×{} cases, {} requests (seed {})…",
        args.cases, args.requests, args.seed
    );
    let eq = build_suite(SuiteKind::Equivalent, args.cases, args.seed);
    let ne = build_suite(SuiteKind::NonEquivalent, args.cases, args.seed + 1);
    let workload = equiv_workload(&[&eq, &ne], args.requests, args.seed);

    // Pre-render every request to protocol strings once: all configs
    // replay exactly the same byte stream.
    let rendered: Vec<(String, String, bool)> = (0..workload.len())
        .map(|i| {
            let (lhs, rhs, expected) = workload.request(i);
            (lhs.to_string(), rhs.to_string(), expected)
        })
        .collect();

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let cold = cold_baseline(&workload, args.requests.min(2_000));
    eprintln!(
        "cold single-thread baseline: {:.0} req/s ({} requests sampled)",
        cold.1, cold.0
    );

    // The headline sweep runs with metrics recording ON — that is the
    // shipped configuration — and a metrics-OFF sweep prices the
    // observability layer itself (`obs_overhead_ratio` per config).
    let runs = run_sweep(
        "warm  ",
        &args.workers,
        args.batch,
        &rendered,
        args.repeat,
        true,
    );
    let runs_off = run_sweep(
        "warm-0",
        &args.workers,
        args.batch,
        &rendered,
        args.repeat,
        false,
    );
    let obs_ratios: Vec<(usize, f64)> = runs
        .iter()
        .filter_map(|on| {
            runs_off
                .iter()
                .find(|off| off.workers == on.workers)
                .map(|off| (on.workers, on.req_per_s / off.req_per_s))
        })
        .collect();
    for (workers, ratio) in &obs_ratios {
        eprintln!("obs overhead: workers {workers:>2} metrics-on/off throughput ratio {ratio:.3}");
    }

    let cold_heavy_runs = if args.cold_heavy {
        let n = args
            .cold_heavy_requests
            .unwrap_or_else(|| args.requests.min(50_000));
        let ch = cold_heavy_workload(&[&eq, &ne], n, args.fresh_permille, args.seed);
        let rendered_ch: Vec<(String, String, bool)> = (0..ch.len())
            .map(|i| {
                let (lhs, rhs, expected) = ch.request(i);
                (lhs.to_string(), rhs.to_string(), expected)
            })
            .collect();
        eprintln!(
            "cold-heavy mode: {} requests, {}‰ fresh pairs…",
            ch.len(),
            args.fresh_permille
        );
        Some(run_sweep(
            "cold-h",
            &args.workers,
            args.batch,
            &rendered_ch,
            args.repeat,
            true,
        ))
    } else {
        None
    };

    let wire_runs = if args.wire {
        let wire_workload = equiv_workload(
            &[&eq, &ne],
            args.wire_requests.min(args.requests),
            args.seed,
        );
        let streams = render_client_streams(&wire_workload, args.clients);
        eprintln!(
            "wire mode: {} requests over {} clients, pipeline depth {}…",
            wire_workload.len(),
            args.clients,
            args.pipeline
        );
        let runs = [
            run_wire(false, &streams, args.pipeline, args.wire_workers),
            run_wire(true, &streams, args.pipeline, args.wire_workers),
        ];
        for r in &runs {
            eprintln!(
                "wire {:>10}: {:>9.0} req/s   p50 {:>8.2} µs   p95 {:>8.2} µs   \
                 p99 {:>8.2} µs   mismatches {}",
                r.mode, r.req_per_s, r.p50_us, r.p95_us, r.p99_us, r.mismatches,
            );
        }
        eprintln!(
            "wire speedup (concurrent vs sequential, {} clients): {:.2}×",
            args.clients,
            runs[1].req_per_s / runs[0].req_per_s
        );
        Some(runs)
    } else {
        None
    };

    let mt_run = if args.tenants >= 2 {
        Some(run_multi_tenant(&args))
    } else {
        None
    };

    let mismatches: u64 = runs.iter().map(|r| r.mismatches).sum::<u64>()
        + cold_heavy_runs
            .iter()
            .flatten()
            .map(|r| r.mismatches)
            .sum::<u64>()
        + wire_runs
            .iter()
            .flatten()
            .map(|r| r.mismatches)
            .sum::<u64>()
        + mt_run.iter().map(MultiTenantRun::mismatches).sum::<u64>();
    if let Some(path) = &args.json_path {
        write_json(
            path,
            &args,
            &Provenance::resolve(),
            host_cpus,
            cold,
            &runs,
            &runs_off,
            &obs_ratios,
            cold_heavy_runs.as_deref(),
            wire_runs.as_ref(),
            mt_run.as_ref(),
        );
    }
    if mismatches > 0 {
        eprintln!("!! {mismatches} verdict mismatches against ground truth");
        std::process::exit(1);
    }
    if let Some(mt) = &mt_run {
        if !mt.isolation_ok {
            eprintln!("!! multi-tenant isolation violated (see the multi_tenant lines above)");
            std::process::exit(1);
        }
    }
    eprintln!("all verdicts identical to the ground truth");
}

/// One thread, fresh store per request: full cold cost per query.
/// Returns (requests measured, req/s).
fn cold_baseline(workload: &Workload, sample: usize) -> (usize, f64) {
    let sample = sample.max(1).min(workload.len());
    let start = Instant::now();
    for i in 0..sample {
        let (lhs, rhs, expected) = workload.request(i);
        let mut store = TypeStore::new();
        let a = store.intern(lhs);
        let b = store.intern(rhs);
        assert_eq!(
            store.equivalent_ids(a, b),
            expected,
            "cold baseline verdict"
        );
    }
    let elapsed = start.elapsed();
    (sample, sample as f64 / elapsed.as_secs_f64())
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    sorted_us[((sorted_us.len() - 1) as f64 * p).round() as usize]
}

fn run_config(
    workers: usize,
    batch_size: usize,
    rendered: &[(String, String, bool)],
    metrics: bool,
) -> ConfigRun {
    // Every config gets a fresh injected session: cold starts are
    // reproducible and configs cannot warm each other. `metrics` toggles
    // the registry recording (the sink stays disabled either way) so the
    // sweep can price observability itself.
    let engine = Engine::with_obs(
        workers,
        Session::new(),
        ObsOptions {
            metrics,
            ..ObsOptions::default()
        },
    );
    // Expected verdict per request id (ids are 1-based arrival order).
    let expected: Vec<bool> = rendered.iter().map(|(_, _, e)| *e).collect();

    let (reply_tx, reply_rx) = bounded::<BatchReply>(workers.max(1) * 4);
    let start = Instant::now();

    // Collector: records per-batch completion instants and checks
    // verdicts; joined after all batches are submitted. The batch seq
    // carries the first request id of the batch.
    let collector = std::thread::spawn({
        let expected = expected.clone();
        move || {
            let mut completions: Vec<(u64, Instant, usize)> = Vec::new();
            let mut mismatches = 0u64;
            let mut warm_hits = 0u64;
            while let Ok((first_id, responses)) = reply_rx.recv() {
                let now = Instant::now();
                for r in &responses {
                    match r {
                        Response::Equiv {
                            id, verdict, warm, ..
                        } => {
                            if *verdict != expected[(*id - 1) as usize] {
                                mismatches += 1;
                            }
                            if *warm {
                                warm_hits += 1;
                            }
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                completions.push((first_id, now, responses.len()));
            }
            (completions, mismatches, warm_hits)
        }
    });

    // Submitter: contiguous ids per batch, one submit-instant per batch;
    // the first id doubles as the batch seq echoed back by the engine.
    let mut submit_times: Vec<(u64, Instant)> = Vec::new();
    let mut next_id = 1u64;
    for chunk in rendered.chunks(batch_size) {
        let first_id = next_id;
        let items: Vec<Request> = chunk
            .iter()
            .map(|(lhs, rhs, _)| {
                let req = Request {
                    id: next_id,
                    op: Op::Equiv {
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                    },
                };
                next_id += 1;
                req
            })
            .collect();
        submit_times.push((first_id, Instant::now()));
        engine.submit(first_id, items, reply_tx.clone());
    }
    drop(reply_tx);
    let (completions, mismatches, warm_hits) = collector.join().expect("collector");
    let end = completions
        .iter()
        .map(|&(_, t, _)| t)
        .max()
        .unwrap_or(start);
    let elapsed = end.duration_since(start);

    // Per-request sojourn latency: batch completion − batch submission,
    // attributed to each request of the batch.
    let mut latencies_us: Vec<f64> = Vec::with_capacity(rendered.len());
    let submit_by_id: std::collections::HashMap<u64, Instant> =
        submit_times.iter().copied().collect();
    for (first_id, done, len) in &completions {
        let submitted = submit_by_id[first_id];
        let us = done.duration_since(submitted).as_secs_f64() * 1e6;
        latencies_us.extend(std::iter::repeat(us).take(*len));
    }
    latencies_us.sort_by(|a, b| a.total_cmp(b));

    let stages = if metrics {
        engine
            .metrics_registry()
            .snapshot()
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(name, h)| {
                (
                    name.clone(),
                    h.count,
                    h.quantile(0.50) as f64 / 1e3,
                    h.quantile(0.95) as f64 / 1e3,
                    h.quantile(0.99) as f64 / 1e3,
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    let snapshot = engine.snapshot();
    ConfigRun {
        workers,
        elapsed,
        req_per_s: rendered.len() as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        p99_us: percentile(&latencies_us, 0.99),
        mismatches,
        warm_hits,
        nodes: snapshot.nodes,
        nrm_hit_rate: snapshot.nrm_hit_rate(),
        equiv_hit_rate: snapshot.equiv_hit_rate(),
        store_generation: snapshot.store_generation,
        snapshot_installs: snapshot.snapshot_installs,
        store_slow_path: snapshot.store_slow_path,
        store_locks: snapshot.store_locks,
        cache_locks: snapshot.cache_locks,
        stages,
    }
}

/// Runs one worker-count sweep over a pre-rendered request stream and
/// prints a throughput line plus the contention profile per config.
/// Each config runs `repeat` times and reports its best run (by req/s):
/// configs replay identical byte streams from fresh engines, so the
/// spread between repeats is host scheduling noise, not the engine.
fn run_sweep(
    label: &str,
    workers_list: &[usize],
    batch: usize,
    rendered: &[(String, String, bool)],
    repeat: usize,
    metrics: bool,
) -> Vec<ConfigRun> {
    let mut runs: Vec<ConfigRun> = Vec::new();
    for &workers in workers_list {
        let run = (0..repeat.max(1))
            .map(|_| run_config(workers, batch, rendered, metrics))
            .max_by(|a, b| a.req_per_s.total_cmp(&b.req_per_s))
            .expect("at least one repeat");
        eprintln!(
            "{label} workers {:>2}: {:>10.0} req/s   p50 {:>8.2} µs   p95 {:>8.2} µs   \
             p99 {:>8.2} µs   warm {:>5.1}%   mismatches {}",
            run.workers,
            run.req_per_s,
            run.p50_us,
            run.p95_us,
            run.p99_us,
            100.0 * run.warm_hits as f64 / rendered.len() as f64,
            run.mismatches,
        );
        eprintln!(
            "{label}            contention: generation {}   installs {}   slow-path {} \
             ({:>5.2}% of requests)   store-locks {}   cache-locks {}",
            run.store_generation,
            run.snapshot_installs,
            run.store_slow_path,
            100.0 * run.store_slow_path as f64 / rendered.len() as f64,
            run.store_locks,
            run.cache_locks,
        );
        runs.push(run);
    }
    runs
}

/// Deals the workload onto per-client streams and renders each request
/// to its wire line (explicit 1-based per-connection id) plus the
/// ground-truth verdict.
fn render_client_streams(workload: &Workload, clients: usize) -> Vec<Vec<(String, bool)>> {
    workload
        .split_round_robin(clients)
        .iter()
        .map(|part| {
            (0..part.len())
                .map(|i| {
                    let (lhs, rhs, expected) = part.request(i);
                    let line = format!(
                        "{{\"id\":{},\"op\":\"equiv\",\"lhs\":\"{}\",\"rhs\":\"{}\"}}\n",
                        i + 1,
                        json::escape(&lhs.to_string()),
                        json::escape(&rhs.to_string()),
                    );
                    (line, expected)
                })
                .collect()
        })
        .collect()
}

/// Drives one client connection: writes its stream keeping up to
/// `pipeline` requests in flight, reads responses (ordered per
/// connection), records client-side write→response latency per request
/// and checks verdicts. Returns per-connection stats.
fn drive_client(
    addr: std::net::SocketAddr,
    lines: &[(String, bool)],
    pipeline: usize,
) -> ClientRun {
    let mut stream = TcpStream::connect(addr).expect("client connect");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone client socket"));
    let mut inflight: VecDeque<(u64, Instant, bool)> = VecDeque::with_capacity(pipeline);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(lines.len());
    let mut mismatches = 0u64;
    let mut next = 0usize;
    let mut line = String::new();
    let start = Instant::now();
    // Service window: first response → last response. Under the
    // sequential listener a connect() succeeds immediately via the
    // kernel backlog even while the server is busy with an earlier
    // connection, so measuring from `start` would fold accept-queue
    // wait into the rate and make later connections look slower than
    // the service they actually received.
    let mut first_response: Option<Instant> = None;
    let mut last_response = start;
    while latencies_us.len() < lines.len() {
        while next < lines.len() && inflight.len() < pipeline {
            let (text, expected) = &lines[next];
            let sent = Instant::now();
            stream.write_all(text.as_bytes()).expect("client write");
            inflight.push_back((next as u64 + 1, sent, *expected));
            next += 1;
        }
        line.clear();
        let n = reader.read_line(&mut line).expect("client read");
        assert!(
            n > 0,
            "server closed early with {} in flight",
            inflight.len()
        );
        let (id, sent, expected) = inflight.pop_front().expect("response without request");
        let pairs = json::parse_object(line.trim()).expect("response json");
        assert_eq!(
            json::get(&pairs, "id").and_then(json::Value::as_int),
            Some(id as i64),
            "out-of-order response: {line}"
        );
        if json::get(&pairs, "verdict") != Some(&json::Value::Bool(expected)) {
            mismatches += 1;
        }
        latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
        last_response = Instant::now();
        first_response.get_or_insert(last_response);
    }
    // Rate over the service window when it is observable (≥2 responses
    // and a nonzero span); otherwise fall back to the full elapsed time.
    let req_per_s = match first_response {
        Some(first) if lines.len() >= 2 && last_response > first => {
            (lines.len() - 1) as f64 / last_response.duration_since(first).as_secs_f64()
        }
        _ => lines.len() as f64 / start.elapsed().as_secs_f64(),
    };
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    ClientRun {
        requests: lines.len(),
        req_per_s,
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        p99_us: percentile(&latencies_us, 0.99),
        mismatches,
    }
}

/// Runs all client streams against a fresh engine behind either the
/// concurrent listener or a sequential accept-one-at-a-time baseline.
/// Wall-clock covers first connect to last response across all clients.
fn run_wire(
    concurrent: bool,
    streams: &[Vec<(String, bool)>],
    pipeline: usize,
    workers: usize,
) -> WireRun {
    let engine = Engine::with_session(workers, Session::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let clients = streams.len();

    let (per_client, elapsed) = std::thread::scope(|scope| {
        let server = if concurrent {
            scope.spawn(|| {
                serve_listener(&engine, &listener, ServeConfig::default())
                    .expect("concurrent server");
            })
        } else {
            // The pre-concurrency baseline: serve one connection to EOF,
            // then accept the next — later clients queue behind earlier
            // ones exactly as the old listener behaved.
            scope.spawn(|| {
                for _ in 0..clients {
                    let (stream, _) = listener.accept().expect("accept");
                    let input = stream.try_clone().expect("clone server socket");
                    serve_session(&engine, input, stream, ServeConfig::default())
                        .expect("sequential server");
                }
            })
        };
        let start = Instant::now();
        let handles: Vec<_> = streams
            .iter()
            .map(|lines| scope.spawn(move || drive_client(addr, lines, pipeline)))
            .collect();
        let per_client: Vec<ClientRun> = handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect();
        let elapsed = start.elapsed();
        if concurrent {
            // Drain the listener so the scope can join the server.
            let mut stream = TcpStream::connect(addr).expect("shutdown connect");
            stream
                .write_all(b"{\"op\":\"shutdown\"}\n")
                .expect("shutdown write");
            let mut line = String::new();
            BufReader::new(stream)
                .read_line(&mut line)
                .expect("shutdown read");
        }
        server.join().expect("server thread");
        (per_client, elapsed)
    });

    let total: usize = per_client.iter().map(|c| c.requests).sum();
    let mismatches: u64 = per_client.iter().map(|c| c.mismatches).sum();
    WireRun {
        mode: if concurrent {
            "concurrent"
        } else {
            "sequential"
        },
        elapsed,
        req_per_s: total as f64 / elapsed.as_secs_f64(),
        p50_us: weighted_percentile(&per_client, |c| c.p50_us),
        p95_us: weighted_percentile(&per_client, |c| c.p95_us),
        p99_us: weighted_percentile(&per_client, |c| c.p99_us),
        mismatches,
        per_client,
    }
}

/// Request-weighted mean of a per-connection percentile — the headline
/// aggregate; exact per-connection values are in `per_connection`.
fn weighted_percentile(clients: &[ClientRun], f: impl Fn(&ClientRun) -> f64) -> f64 {
    let total: usize = clients.iter().map(|c| c.requests).sum();
    if total == 0 {
        return 0.0;
    }
    clients
        .iter()
        .map(|c| f(c) * c.requests as f64)
        .sum::<f64>()
        / total as f64
}

/// Quiet-tenant quotas/pacing for the multi-tenant mode. The paced
/// rate sits well under the uniform rate limit so a quiet tenant is
/// never throttled; the noisy neighbor blasts unpaced and therefore
/// mostly is.
const MT_RATE_LIMIT: u64 = 2_000;
const MT_QUIET_RATE: f64 = 800.0;
const MT_QUIET_REQUESTS: usize = 1_200;

/// Drives one quiet tenant: one request at a time, paced at `rate`
/// req/s, measuring the synchronous admit→verdict latency per request.
fn drive_quiet(registry: &TenantRegistry, name: &str, workload: &Workload, rate: f64) -> TenantRun {
    let mut view = registry.view();
    let interval = Duration::from_secs_f64(1.0 / rate);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(workload.len());
    let mut granted = 0u64;
    let mut throttled = 0u64;
    let mut mismatches = 0u64;
    let start = Instant::now();
    for i in 0..workload.len() {
        let due = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let (lhs, rhs, expected) = workload.request(i);
        let request = Request {
            id: i as u64 + 1,
            op: Op::Equiv {
                lhs: lhs.to_string(),
                rhs: rhs.to_string(),
            },
        };
        let sent = Instant::now();
        let responses = registry.process(&mut view, name, vec![request]);
        latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
        for r in &responses {
            match r {
                Response::Equiv { verdict, .. } => {
                    granted += 1;
                    if *verdict != expected {
                        mismatches += 1;
                    }
                }
                Response::Throttled { .. } => throttled += 1,
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
    let elapsed = start.elapsed();
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    TenantRun {
        name: name.to_owned(),
        offered: workload.len() as u64,
        granted,
        throttled,
        mismatches,
        req_per_s: granted as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        store_bytes: 0,
    }
}

/// Drives the noisy tenant: unpaced `batch`-request batches, cycling
/// its workload until `done`, taking whatever prefix admission grants
/// and counting the refusals.
fn drive_noisy(
    registry: &TenantRegistry,
    name: &str,
    workload: &Workload,
    batch: usize,
    done: &AtomicBool,
) -> TenantRun {
    let mut view = registry.view();
    let mut offered = 0u64;
    let mut granted = 0u64;
    let mut throttled = 0u64;
    let mut mismatches = 0u64;
    let mut next = 0usize;
    let start = Instant::now();
    while !done.load(Ordering::Acquire) {
        let items: Vec<Request> = (0..batch)
            .map(|k| {
                let i = (next + k) % workload.len();
                let (lhs, rhs, _) = workload.request(i);
                Request {
                    id: i as u64 + 1,
                    op: Op::Equiv {
                        lhs: lhs.to_string(),
                        rhs: rhs.to_string(),
                    },
                }
            })
            .collect();
        next = (next + batch) % workload.len();
        offered += batch as u64;
        for r in registry.process(&mut view, name, items) {
            match r {
                Response::Equiv { id, verdict, .. } => {
                    granted += 1;
                    if verdict != workload.request(id as usize - 1).2 {
                        mismatches += 1;
                    }
                }
                Response::Throttled { .. } => throttled += 1,
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
    let elapsed = start.elapsed();
    TenantRun {
        name: name.to_owned(),
        offered,
        granted,
        throttled,
        mismatches,
        req_per_s: granted as f64 / elapsed.as_secs_f64(),
        p50_us: 0.0,
        p99_us: 0.0,
        store_bytes: 0,
    }
}

fn mt_registry() -> TenantRegistry {
    TenantRegistry::new(TenantConfig {
        obs: ObsOptions {
            metrics: true,
            ..ObsOptions::default()
        },
        quotas: TenantQuotas {
            rate_limit: MT_RATE_LIMIT,
            ..TenantQuotas::default()
        },
        ..TenantConfig::default()
    })
}

/// Stamps each run's tenant store size from the live registry.
fn stamp_store_bytes(registry: &TenantRegistry, runs: &mut [TenantRun]) {
    for handle in registry.handles() {
        for run in runs.iter_mut() {
            if run.name == handle.name() {
                run.store_bytes = handle.store_bytes();
            }
        }
    }
}

/// The multi-tenant isolation benchmark (see the module docs): quiet
/// tenants paced solo for a baseline, then the same quiet tenants
/// beside an unpaced noisy neighbor on a fresh registry.
fn run_multi_tenant(args: &Args) -> MultiTenantRun {
    let workloads = tenant_workloads(args.tenants, args.cases, MT_QUIET_REQUESTS, args.seed);
    eprintln!(
        "multi-tenant mode: {} tenants, quiet paced at {:.0} req/s under a {} req/s quota, \
         noisy tenant unpaced…",
        args.tenants, MT_QUIET_RATE, MT_RATE_LIMIT
    );

    // Phase 1: quiet tenants alone — the latency baseline.
    let solo_registry = mt_registry();
    let mut quiet_solo: Vec<TenantRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..args.tenants)
            .map(|t| {
                let registry = &solo_registry;
                let workload = &workloads[t];
                scope.spawn(move || {
                    drive_quiet(registry, &format!("tenant{t}"), workload, MT_QUIET_RATE)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("quiet tenant"))
            .collect()
    });
    stamp_store_bytes(&solo_registry, &mut quiet_solo);

    // Phase 2: the same quiet pacing beside the noisy neighbor, on a
    // fresh registry (cold engines both phases, like every other mode).
    let shared_registry = mt_registry();
    let done = AtomicBool::new(false);
    let shared_start = Instant::now();
    let (mut quiet_shared, mut noisy): (Vec<TenantRun>, TenantRun) = std::thread::scope(|scope| {
        let noisy_handle = {
            let registry = &shared_registry;
            let workload = &workloads[0];
            let done = &done;
            scope.spawn(move || drive_noisy(registry, "tenant0", workload, args.batch, done))
        };
        let quiet_handles: Vec<_> = (1..args.tenants)
            .map(|t| {
                let registry = &shared_registry;
                let workload = &workloads[t];
                scope.spawn(move || {
                    drive_quiet(registry, &format!("tenant{t}"), workload, MT_QUIET_RATE)
                })
            })
            .collect();
        let quiet: Vec<TenantRun> = quiet_handles
            .into_iter()
            .map(|h| h.join().expect("quiet tenant"))
            .collect();
        done.store(true, Ordering::Release);
        (quiet, noisy_handle.join().expect("noisy tenant"))
    });
    let shared_elapsed = shared_start.elapsed();
    stamp_store_bytes(&shared_registry, &mut quiet_shared);
    stamp_store_bytes(&shared_registry, std::slice::from_mut(&mut noisy));

    let quiet_p99 = |runs: &[TenantRun]| runs.iter().map(|r| r.p99_us).fold(0.0f64, f64::max);
    let quiet_p99_solo_us = quiet_p99(&quiet_solo);
    let quiet_p99_shared_us = quiet_p99(&quiet_shared);
    // Generous bound: host scheduling noise on small shared runners
    // must not fail the bench, head-of-line blocking must. A quiet
    // tenant stuck behind the noisy one's granted batches would blow
    // through this by orders of magnitude.
    let quiet_p99_bound_us = (quiet_p99_solo_us * 20.0).max(1_500.0);
    let quiet_throttled: u64 = quiet_shared.iter().map(|r| r.throttled).sum();
    let isolation_ok =
        noisy.throttled > 0 && quiet_throttled == 0 && quiet_p99_shared_us <= quiet_p99_bound_us;

    let granted_total = noisy.granted + quiet_shared.iter().map(|r| r.granted).sum::<u64>();
    let run = MultiTenantRun {
        tenants: args.tenants,
        rate_limit: MT_RATE_LIMIT,
        quiet_target_req_per_s: MT_QUIET_RATE,
        quiet_solo,
        quiet_shared,
        noisy,
        aggregate_req_per_s: granted_total as f64 / shared_elapsed.as_secs_f64(),
        registry_locks: shared_registry.lock_acquisitions(),
        quiet_p99_solo_us,
        quiet_p99_shared_us,
        quiet_p99_bound_us,
        isolation_ok,
    };
    eprintln!(
        "multi-tenant noisy  : offered {:>8}   granted {:>6} ({:>7.0} req/s)   throttled {}",
        run.noisy.offered, run.noisy.granted, run.noisy.req_per_s, run.noisy.throttled,
    );
    for (solo, shared) in run.quiet_solo.iter().zip(run.quiet_shared.iter()) {
        eprintln!(
            "multi-tenant {:<7}: solo p99 {:>8.2} µs   beside noisy p99 {:>8.2} µs   \
             throttled {}",
            shared.name, solo.p99_us, shared.p99_us, shared.throttled,
        );
    }
    eprintln!(
        "multi-tenant isolation: quiet p99 {:.2} µs ≤ bound {:.2} µs, \
         registry locks {} → {}",
        run.quiet_p99_shared_us,
        run.quiet_p99_bound_us,
        run.registry_locks,
        if run.isolation_ok { "ok" } else { "VIOLATED" },
    );
    run
}

/// Renders one engine-config run as a JSON object line, including the
/// contention profile (generation, installs, slow-path, lock counters).
fn config_json(r: &ConfigRun) -> String {
    let mut out = format!(
        "{{\"workers\": {}, \"elapsed_ms\": {:.3}, \"req_per_s\": {:.1}, \
         \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \
         \"verdict_mismatches\": {}, \"warm_hits\": {}, \"nodes\": {}, \
         \"nrm_hit_rate\": {:.4}, \"equiv_hit_rate\": {:.4}, \
         \"store_generation\": {}, \"snapshot_installs\": {}, \
         \"store_slow_path\": {}, \"store_locks\": {}, \"cache_locks\": {}",
        r.workers,
        r.elapsed.as_secs_f64() * 1e3,
        r.req_per_s,
        r.p50_us,
        r.p95_us,
        r.p99_us,
        r.mismatches,
        r.warm_hits,
        r.nodes,
        r.nrm_hit_rate,
        r.equiv_hit_rate,
        r.store_generation,
        r.snapshot_installs,
        r.store_slow_path,
        r.store_locks,
        r.cache_locks,
    );
    if !r.stages.is_empty() {
        out.push_str(", \"stages\": {");
        for (i, (name, count, p50, p95, p99)) in r.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {{\"count\": {count}, \"p50_us\": {p50:.3}, \
                 \"p95_us\": {p95:.3}, \"p99_us\": {p99:.3}}}"
            ));
        }
        out.push('}');
    }
    out.push('}');
    out
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    args: &Args,
    provenance: &Provenance,
    host_cpus: usize,
    cold: (usize, f64),
    runs: &[ConfigRun],
    runs_off: &[ConfigRun],
    obs_ratios: &[(usize, f64)],
    cold_heavy: Option<&[ConfigRun]>,
    wire: Option<&[WireRun; 2]>,
    mt: Option<&MultiTenantRun>,
) {
    let mut f = std::fs::File::create(path).expect("create json");
    writeln!(f, "{{").expect("write");
    writeln!(f, "  \"bench\": \"server_throughput\",").expect("write");
    writeln!(
        f,
        "  \"run_id\": {},",
        args.run_id
            .as_ref()
            .map(|id| format!("\"{}\"", json::escape(id)))
            .unwrap_or_else(|| "null".to_owned())
    )
    .expect("write");
    writeln!(
        f,
        "  \"git_rev\": \"{}\",",
        json::escape(&provenance.git_rev)
    )
    .expect("write");
    writeln!(
        f,
        "  \"rustc_version\": \"{}\",",
        json::escape(&provenance.rustc_version)
    )
    .expect("write");
    writeln!(f, "  \"requests\": {},", args.requests).expect("write");
    writeln!(f, "  \"cases_per_suite\": {},", args.cases).expect("write");
    writeln!(f, "  \"batch\": {},", args.batch).expect("write");
    writeln!(f, "  \"seed\": {},", args.seed).expect("write");
    writeln!(f, "  \"repeat\": {},", args.repeat).expect("write");
    writeln!(f, "  \"host_cpus\": {host_cpus},").expect("write");
    writeln!(
        f,
        "  \"cold_baseline\": {{\"requests\": {}, \"req_per_s\": {:.1}}},",
        cold.0, cold.1
    )
    .expect("write");
    writeln!(f, "  \"configs\": [").expect("write");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        writeln!(f, "    {}{comma}", config_json(r)).expect("write");
    }
    writeln!(f, "  ],").expect("write");
    // The same sweep with metrics recording disabled, plus the per-
    // config on/off throughput ratio (the < 5% overhead gate reads
    // `obs_overhead_min_ratio`).
    writeln!(f, "  \"metrics_off_configs\": [").expect("write");
    for (i, r) in runs_off.iter().enumerate() {
        let comma = if i + 1 < runs_off.len() { "," } else { "" };
        writeln!(f, "    {}{comma}", config_json(r)).expect("write");
    }
    writeln!(f, "  ],").expect("write");
    writeln!(f, "  \"obs_overhead_ratio\": [").expect("write");
    for (i, (workers, ratio)) in obs_ratios.iter().enumerate() {
        let comma = if i + 1 < obs_ratios.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"workers\": {workers}, \"metrics_on_over_off\": {ratio:.4}}}{comma}"
        )
        .expect("write");
    }
    writeln!(f, "  ],").expect("write");
    let min_ratio = obs_ratios
        .iter()
        .map(|&(_, r)| r)
        .fold(f64::INFINITY, f64::min);
    writeln!(
        f,
        "  \"obs_overhead_min_ratio\": {:.4},",
        if min_ratio.is_finite() {
            min_ratio
        } else {
            1.0
        }
    )
    .expect("write");
    if let Some(ch) = cold_heavy {
        writeln!(f, "  \"cold_heavy\": {{").expect("write");
        writeln!(
            f,
            "    \"requests\": {},",
            args.cold_heavy_requests
                .unwrap_or_else(|| args.requests.min(50_000))
        )
        .expect("write");
        writeln!(f, "    \"fresh_permille\": {},", args.fresh_permille).expect("write");
        writeln!(f, "    \"configs\": [").expect("write");
        for (i, r) in ch.iter().enumerate() {
            let comma = if i + 1 < ch.len() { "," } else { "" };
            writeln!(f, "      {}{comma}", config_json(r)).expect("write");
        }
        writeln!(f, "    ]").expect("write");
        let ch_by = |n: usize| ch.iter().find(|r| r.workers == n);
        if let (Some(one), Some(eight)) = (ch_by(1).or(ch.first()), ch_by(8)) {
            writeln!(
                f,
                "    ,\"speedup_8w_vs_1w\": {:.2}",
                eight.req_per_s / one.req_per_s
            )
            .expect("write");
        }
        writeln!(f, "  }},").expect("write");
    }
    if let Some(wire) = wire {
        writeln!(f, "  \"wire\": {{").expect("write");
        writeln!(f, "    \"clients\": {},", args.clients).expect("write");
        writeln!(f, "    \"pipeline\": {},", args.pipeline).expect("write");
        writeln!(f, "    \"workers\": {},", args.wire_workers).expect("write");
        writeln!(
            f,
            "    \"requests\": {},",
            wire[0].per_client.iter().map(|c| c.requests).sum::<usize>()
        )
        .expect("write");
        writeln!(f, "    \"configs\": [").expect("write");
        for (i, r) in wire.iter().enumerate() {
            let comma = if i + 1 < wire.len() { "," } else { "" };
            writeln!(
                f,
                "      {{\"mode\": \"{}\", \"elapsed_ms\": {:.3}, \"req_per_s\": {:.1}, \
                 \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"verdict_mismatches\": {},",
                r.mode,
                r.elapsed.as_secs_f64() * 1e3,
                r.req_per_s,
                r.p50_us,
                r.p95_us,
                r.p99_us,
                r.mismatches,
            )
            .expect("write");
            writeln!(f, "       \"per_connection\": [").expect("write");
            for (j, c) in r.per_client.iter().enumerate() {
                let ccomma = if j + 1 < r.per_client.len() { "," } else { "" };
                writeln!(
                    f,
                    "         {{\"client\": {j}, \"requests\": {}, \"req_per_s\": {:.1}, \
                     \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \
                     \"verdict_mismatches\": {}}}{ccomma}",
                    c.requests, c.req_per_s, c.p50_us, c.p95_us, c.p99_us, c.mismatches,
                )
                .expect("write");
            }
            writeln!(f, "       ]}}{comma}").expect("write");
        }
        writeln!(f, "    ],").expect("write");
        writeln!(
            f,
            "    \"wire_speedup_concurrent_vs_sequential\": {:.2}",
            wire[1].req_per_s / wire[0].req_per_s
        )
        .expect("write");
        writeln!(f, "  }},").expect("write");
    }
    if let Some(mt) = mt {
        let tenant_json = |r: &TenantRun| {
            format!(
                "{{\"tenant\": \"{}\", \"offered\": {}, \"granted\": {}, \"throttled\": {}, \
                 \"req_per_s\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"store_bytes\": {}, \"verdict_mismatches\": {}}}",
                json::escape(&r.name),
                r.offered,
                r.granted,
                r.throttled,
                r.req_per_s,
                r.p50_us,
                r.p99_us,
                r.store_bytes,
                r.mismatches,
            )
        };
        let tenant_list = |runs: &[TenantRun]| {
            runs.iter()
                .map(|r| format!("      {}", tenant_json(r)))
                .collect::<Vec<_>>()
                .join(",\n")
        };
        writeln!(f, "  \"multi_tenant\": {{").expect("write");
        writeln!(f, "    \"tenants\": {},", mt.tenants).expect("write");
        writeln!(f, "    \"rate_limit_per_s\": {},", mt.rate_limit).expect("write");
        writeln!(
            f,
            "    \"quiet_target_req_per_s\": {:.1},",
            mt.quiet_target_req_per_s
        )
        .expect("write");
        writeln!(
            f,
            "    \"aggregate_req_per_s\": {:.1},",
            mt.aggregate_req_per_s
        )
        .expect("write");
        writeln!(
            f,
            "    \"registry_lock_acquisitions\": {},",
            mt.registry_locks
        )
        .expect("write");
        writeln!(f, "    \"noisy\": {},", tenant_json(&mt.noisy)).expect("write");
        writeln!(f, "    \"quiet_solo\": [").expect("write");
        writeln!(f, "{}", tenant_list(&mt.quiet_solo)).expect("write");
        writeln!(f, "    ],").expect("write");
        writeln!(f, "    \"quiet_shared\": [").expect("write");
        writeln!(f, "{}", tenant_list(&mt.quiet_shared)).expect("write");
        writeln!(f, "    ],").expect("write");
        writeln!(f, "    \"quiet_p99_solo_us\": {:.3},", mt.quiet_p99_solo_us).expect("write");
        writeln!(
            f,
            "    \"quiet_p99_shared_us\": {:.3},",
            mt.quiet_p99_shared_us
        )
        .expect("write");
        writeln!(
            f,
            "    \"quiet_p99_bound_us\": {:.3},",
            mt.quiet_p99_bound_us
        )
        .expect("write");
        writeln!(f, "    \"isolation_ok\": {}", mt.isolation_ok).expect("write");
        writeln!(f, "  }},").expect("write");
    }
    let by_workers = |n: usize| runs.iter().find(|r| r.workers == n);
    let best = runs
        .iter()
        .max_by(|a, b| a.req_per_s.total_cmp(&b.req_per_s));
    let one = by_workers(1).or(runs.first());
    if let (Some(best), Some(one)) = (best, one) {
        writeln!(
            f,
            "  \"speedup_best_vs_1w\": {:.2},",
            best.req_per_s / one.req_per_s
        )
        .expect("write");
        if let Some(eight) = by_workers(8) {
            writeln!(
                f,
                "  \"speedup_8w_vs_1w\": {:.2},",
                eight.req_per_s / one.req_per_s
            )
            .expect("write");
            writeln!(
                f,
                "  \"speedup_8w_vs_cold_single_thread\": {:.2},",
                eight.req_per_s / cold.1
            )
            .expect("write");
        }
    }
    let mismatches: u64 = runs.iter().map(|r| r.mismatches).sum::<u64>()
        + cold_heavy
            .iter()
            .flat_map(|c| c.iter())
            .map(|r| r.mismatches)
            .sum::<u64>()
        + wire
            .iter()
            .flat_map(|w| w.iter())
            .map(|r| r.mismatches)
            .sum::<u64>()
        + mt.iter().map(|m| m.mismatches()).sum::<u64>();
    writeln!(f, "  \"verdict_mismatches_total\": {mismatches}").expect("write");
    writeln!(f, "}}").expect("write");
    eprintln!("wrote {path}");
}
