//! Shared measurement machinery for the Figure 10 harness and the
//! Criterion benchmarks.

use algst_core::equiv::equivalent;
use algst_gen::instance::TestCase;
use algst_gen::to_grammar::to_grammar;
use freest::{bisimilar_with, BisimResult, Grammar};
use std::time::{Duration, Instant};

/// Per-case measurement, one row of the Figure 10 scatter plots.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub case_id: usize,
    /// AlgST AST nodes — the x-axis.
    pub nodes: usize,
    /// AlgST linear-time equivalence check.
    pub algst: Duration,
    /// FreeST bisimulation check (None if it timed out).
    pub freest: Option<Duration>,
    /// Both checkers agreed with the ground truth (timeouts count as
    /// agreement, as in the paper, which plots them separately).
    pub agreed: bool,
}

/// Measures one test case.
///
/// The AlgST check is microseconds-scale, so it is repeated adaptively
/// and averaged; the FreeST check runs once under `timeout`.
pub fn measure_case(case_id: usize, case: &TestCase, timeout: Duration) -> Measurement {
    let nodes = case.node_count();

    // --- AlgST ---------------------------------------------------------
    let mut reps: u32 = 1;
    let (algst, algst_verdict) = loop {
        let start = Instant::now();
        let mut verdict = false;
        for _ in 0..reps {
            verdict = equivalent(&case.instance.ty, &case.other);
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(2) || reps >= 1 << 20 {
            break (elapsed / reps, verdict);
        }
        reps *= 4;
    };

    // --- FreeST --------------------------------------------------------
    // The translation uses the linear-space grammar rendering (see
    // `algst_gen::to_grammar`); timing covers grammar construction plus
    // the bisimilarity query, as in the paper.
    let start = Instant::now();
    let mut g = Grammar::new();
    let w1 = to_grammar(&case.instance.decls, &case.instance.ty, &mut g)
        .expect("suite cases are translatable");
    let w2 = to_grammar(&case.instance.decls, &case.other, &mut g)
        .expect("suite cases are translatable");
    let result = bisimilar_with(&mut g, &w1, &w2, u64::MAX, Some(timeout));
    let freest_elapsed = start.elapsed();

    let (freest, freest_agrees) = match result {
        BisimResult::Equivalent => (Some(freest_elapsed), case.equivalent),
        BisimResult::NotEquivalent => (Some(freest_elapsed), !case.equivalent),
        BisimResult::Budget => (None, true),
    };

    Measurement {
        case_id,
        nodes,
        algst,
        freest,
        agreed: algst_verdict == case.equivalent && freest_agrees,
    }
}

/// Formats a duration in fractional milliseconds (log-scale friendly,
/// like the paper's y-axis).
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}
