//! Shared measurement machinery for the Figure 10 harness and the
//! Criterion benchmarks.

use algst_core::store::{TypeId, TypeStore};
use algst_core::Session;
use algst_gen::instance::TestCase;
use algst_gen::to_grammar::to_grammar;
use freest::{bisimilar_with, BisimResult, Grammar};
use std::time::{Duration, Instant};

/// Per-case measurement, one row of the Figure 10 scatter plots.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub case_id: usize,
    /// AlgST AST nodes — the x-axis.
    pub nodes: usize,
    /// AlgST linear-time equivalence check, **cold**: a fresh
    /// [`TypeStore`] per query, so the time covers interning,
    /// normalization and comparison from scratch.
    pub algst: Duration,
    /// The same query, **warm**: repeated against a store that has
    /// already normalized both sides. This is the amortized cost a
    /// type-checking server pays for everything after first contact —
    /// two memo lookups and a `TypeId` comparison, no allocation, no
    /// traversal.
    pub algst_warm: Duration,
    /// FreeST bisimulation check (None if it timed out).
    pub freest: Option<Duration>,
    /// Both checkers agreed with the ground truth (timeouts count as
    /// agreement, as in the paper, which plots them separately).
    pub agreed: bool,
}

/// Measures one test case.
///
/// `ids` are `case`'s two sides interned in `session` (suites built by
/// `algst_gen::suite::build_suite` provide both via their own session).
/// The AlgST checks are microseconds-scale (nanoseconds warm), so they
/// are repeated adaptively and averaged; the FreeST check runs once
/// under `timeout`.
pub fn measure_case(
    case_id: usize,
    case: &TestCase,
    ids: (TypeId, TypeId),
    session: &mut Session,
    timeout: Duration,
) -> Measurement {
    let nodes = case.node_count();

    // --- AlgST, cold ---------------------------------------------------
    // A fresh store per repetition: every query pays the full linear
    // intern + normalize + compare, like a first-contact request.
    let (algst, algst_verdict) = time_adaptive(|| {
        let mut fresh = TypeStore::new();
        let a = fresh.intern(&case.instance.ty);
        let b = fresh.intern(&case.other);
        fresh.equivalent_ids(a, b)
    });

    // --- AlgST, warm ---------------------------------------------------
    // Prime the suite session once, then measure the steady state.
    let warm_verdict_once = session.equivalent_ids(ids.0, ids.1);
    let (algst_warm, warm_verdict) = time_adaptive(|| session.equivalent_ids(ids.0, ids.1));
    debug_assert_eq!(warm_verdict_once, warm_verdict);

    // --- FreeST --------------------------------------------------------
    // The translation uses the linear-space grammar rendering (see
    // `algst_gen::to_grammar`); timing covers grammar construction plus
    // the bisimilarity query, as in the paper.
    let start = Instant::now();
    let mut g = Grammar::new();
    let w1 = to_grammar(session, &case.instance.decls, &case.instance.ty, &mut g)
        .expect("suite cases are translatable");
    let w2 = to_grammar(session, &case.instance.decls, &case.other, &mut g)
        .expect("suite cases are translatable");
    let result = bisimilar_with(&mut g, &w1, &w2, u64::MAX, Some(timeout));
    let freest_elapsed = start.elapsed();

    let (freest, freest_agrees) = match result {
        BisimResult::Equivalent => (Some(freest_elapsed), case.equivalent),
        BisimResult::NotEquivalent => (Some(freest_elapsed), !case.equivalent),
        BisimResult::Budget => (None, true),
    };

    Measurement {
        case_id,
        nodes,
        algst,
        algst_warm,
        freest,
        agreed: algst_verdict == case.equivalent
            && warm_verdict == case.equivalent
            && freest_agrees,
    }
}

/// Runs `f` repeatedly, growing the repetition count until the batch is
/// clock-resolvable, and returns (mean duration per call, last result).
fn time_adaptive<R>(mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut reps: u32 = 1;
    loop {
        let start = Instant::now();
        let mut out = f();
        for _ in 1..reps {
            out = f();
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(2) || reps >= 1 << 20 {
            return (elapsed / reps, out);
        }
        reps *= 4;
    }
}

/// Aggregate statistics over one suite's rows: the one-number-per-PR
/// trajectory view (median, tail, and a least-squares ns-per-node slope
/// for the linear-time claim).
#[derive(Clone, Debug)]
pub struct SuiteStats {
    pub cases: usize,
    pub algst_median_ms: f64,
    pub algst_p95_ms: f64,
    pub warm_median_ms: f64,
    pub warm_p95_ms: f64,
    /// Median over decided (non-timeout) FreeST queries, if any.
    pub freest_median_ms: Option<f64>,
    pub freest_timeouts: usize,
    /// Least-squares (through the origin) slope of cold AlgST time vs.
    /// node count, in nanoseconds per node. Theorem 3 says this should
    /// stay flat as sizes grow; across PRs it is the single number to
    /// watch for hot-path regressions.
    pub algst_ns_per_node: f64,
    pub agreements: usize,
}

/// Computes [`SuiteStats`] for a set of measurements.
pub fn suite_stats(rows: &[Measurement]) -> SuiteStats {
    fn percentile(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let ix = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[ix]
    }
    let mut algst: Vec<f64> = rows.iter().map(|r| ms(r.algst)).collect();
    algst.sort_by(|a, b| a.total_cmp(b));
    let mut warm: Vec<f64> = rows.iter().map(|r| ms(r.algst_warm)).collect();
    warm.sort_by(|a, b| a.total_cmp(b));
    let mut freest: Vec<f64> = rows.iter().filter_map(|r| r.freest.map(ms)).collect();
    freest.sort_by(|a, b| a.total_cmp(b));

    // Least squares through the origin: slope = Σ(x·y) / Σ(x²).
    let (mut xy, mut xx) = (0.0f64, 0.0f64);
    for r in rows {
        let x = r.nodes as f64;
        let y = r.algst.as_nanos() as f64;
        xy += x * y;
        xx += x * x;
    }
    SuiteStats {
        cases: rows.len(),
        algst_median_ms: percentile(&algst, 0.5),
        algst_p95_ms: percentile(&algst, 0.95),
        warm_median_ms: percentile(&warm, 0.5),
        warm_p95_ms: percentile(&warm, 0.95),
        freest_median_ms: if freest.is_empty() {
            None
        } else {
            Some(percentile(&freest, 0.5))
        },
        freest_timeouts: rows.iter().filter(|r| r.freest.is_none()).count(),
        algst_ns_per_node: if xx > 0.0 { xy / xx } else { 0.0 },
        agreements: rows.iter().filter(|r| r.agreed).count(),
    }
}

/// Formats a duration in fractional milliseconds (log-scale friendly,
/// like the paper's y-axis).
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_gen::suite::{build_suite, SuiteKind};

    #[test]
    fn warm_queries_match_cold_verdicts_and_are_not_slower() {
        let mut suite = build_suite(SuiteKind::Equivalent, 6, 11);
        let ids = suite.ids.clone();
        let mut rows = Vec::new();
        for (i, case) in suite.cases.iter().enumerate() {
            let m = measure_case(
                i,
                case,
                ids[i],
                &mut suite.session,
                Duration::from_millis(200),
            );
            assert!(m.agreed, "case {i} disagreed");
            rows.push(m);
        }
        // The warm path is a table lookup; across a whole suite its
        // median must not exceed the cold median.
        let stats = suite_stats(&rows);
        assert!(
            stats.warm_median_ms <= stats.algst_median_ms,
            "warm {} > cold {}",
            stats.warm_median_ms,
            stats.algst_median_ms
        );
        assert!(stats.algst_ns_per_node >= 0.0);
        assert_eq!(stats.cases, 6);
    }
}
