//! A naive unfold-and-compare **reference oracle** for type equivalence.
//!
//! This is deliberately *not* a wrapper around `algst_core::normalize` —
//! it re-derives the paper's Fig. 3 semantics from scratch with a
//! different mechanism, so that a bug in the production normalizer (or
//! its memoized id-level ports) cannot hide by also living here:
//!
//! * instead of rewriting the tree to a normal form and α-comparing, it
//!   converts each type straight into a canonical value (`CTy`) in one
//!   pass, tracking the pending `Dual` as a boolean *polarity* flag and
//!   the reverse operator `-` as a *negation parity* on payloads;
//! * binders become de-Bruijn indices during that same pass, so
//!   α-equivalence is plain `==` on the result — no renaming, no
//!   substitution, no store.
//!
//! Equivalence is then `canon(T) == canon(U)` — exactly the paper's
//! `nrm⁺(T) =α nrm⁺(U)`, derived independently.
//!
//! The oracle can be *sabotaged* for fuzzer self-tests: see
//! [`Sabotage`]. A sabotaged reference disagrees with the production
//! oracles on a well-understood class of inputs, which is how the
//! `conform` test-suite proves the differential loop and the reducer
//! actually detect and minimize bugs.

use algst_core::kind::Kind;
use algst_core::symbol::Symbol;
use algst_core::types::{BaseType, Type};

/// A deliberate bug injected into an oracle, to prove the fuzzer finds
/// and minimizes real disagreements.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Sabotage {
    /// No injected bug (the production configuration).
    #[default]
    None,
    /// The reference oracle ignores a pending `Dual` on `End?`/`End!` —
    /// i.e. it believes `Dual End? ≡ End?`. Minimal counterexamples are
    /// 3-node pairs like `Dual End?` vs `End!`.
    ReferenceDual,
    /// The reference oracle drops negation parity on message payloads —
    /// i.e. it believes `?(-T).S ≡ ?T.S`.
    ReferenceNeg,
}

impl Sabotage {
    /// Parses the CLI spelling (`reference-dual`, `reference-neg`).
    pub fn from_flag(flag: &str) -> Option<Sabotage> {
        match flag {
            "none" => Some(Sabotage::None),
            "reference-dual" => Some(Sabotage::ReferenceDual),
            "reference-neg" => Some(Sabotage::ReferenceNeg),
            _ => None,
        }
    }

    pub fn flag(self) -> &'static str {
        match self {
            Sabotage::None => "none",
            Sabotage::ReferenceDual => "reference-dual",
            Sabotage::ReferenceNeg => "reference-neg",
        }
    }
}

/// The canonical value a type maps to. Two types are equivalent iff
/// their `CTy`s are `==`.
#[derive(Clone, Debug, PartialEq, Eq)]
enum CTy {
    Unit,
    Base(BaseType),
    /// A free variable (no enclosing binder).
    Free(Symbol),
    /// A de-Bruijn index, innermost binder 0.
    Bound(u32),
    /// `Dual α` for a free / bound variable — the only place a dual can
    /// survive in a canonical value (paper Lemma 3).
    DualFree(Symbol),
    DualBound(u32),
    Arrow(Box<CTy>, Box<CTy>),
    Pair(Box<CTy>, Box<CTy>),
    Forall(Kind, Box<CTy>),
    In(Box<CTy>, Box<CTy>),
    Out(Box<CTy>, Box<CTy>),
    EndIn,
    EndOut,
    Proto(Symbol, Vec<CTy>),
    Data(Symbol, Vec<CTy>),
    /// A single surviving reverse operator (protocol argument position).
    Neg(Box<CTy>),
    /// Robustness fallback: `Dual` of a non-session construct (ill-kinded
    /// input; mirrors the production normalizer's reification).
    DualWrap(Box<CTy>),
}

/// Decides `T ≡_A U` with the reference semantics.
pub fn equivalent(t: &Type, u: &Type) -> bool {
    equivalent_with(t, u, Sabotage::None)
}

/// [`equivalent`] under an injected bug (for fuzzer self-tests).
pub fn equivalent_with(t: &Type, u: &Type, sabotage: Sabotage) -> bool {
    canon_root(t, sabotage) == canon_root(u, sabotage)
}

fn canon_root(t: &Type, sabotage: Sabotage) -> CTy {
    let mut env = Vec::new();
    payload(t, &mut env, sabotage)
}

/// Canonicalizes a *payload / protocol-argument* position: strips the
/// reverse operator `-` counting parity and re-attaches a single `Neg`
/// when the parity is odd (`-(-T) = T`, Fig. 3).
fn payload(t: &Type, env: &mut Vec<Symbol>, sabotage: Sabotage) -> CTy {
    let mut negated = false;
    let mut current = t;
    while let Type::Neg(inner) = current {
        negated = !negated;
        current = inner;
    }
    let core = spine(current, env, false, sabotage);
    if negated {
        CTy::Neg(Box::new(core))
    } else {
        core
    }
}

/// Canonicalizes a type with a pending-`Dual` polarity flag. `dual`
/// means "an odd number of `Dual`s surround this position".
fn spine(t: &Type, env: &mut Vec<Symbol>, dual: bool, sabotage: Sabotage) -> CTy {
    match t {
        Type::Dual(inner) => spine(inner, env, !dual, sabotage),
        Type::EndIn => {
            if dual && sabotage != Sabotage::ReferenceDual {
                CTy::EndOut
            } else {
                CTy::EndIn
            }
        }
        Type::EndOut => {
            if dual && sabotage != Sabotage::ReferenceDual {
                CTy::EndIn
            } else {
                CTy::EndOut
            }
        }
        Type::Var(v) => {
            let bound = env.iter().rev().position(|b| b == v).map(|i| i as u32);
            match (bound, dual) {
                (Some(i), false) => CTy::Bound(i),
                (Some(i), true) => CTy::DualBound(i),
                (None, false) => CTy::Free(*v),
                (None, true) => CTy::DualFree(*v),
            }
        }
        // A message direction is its constructor, flipped once per
        // pending Dual and once per odd payload negation (the
        // materialization §(±(…)) of Fig. 3, folded into one xor).
        Type::In(p, s) | Type::Out(p, s) => {
            let q = payload(p, env, sabotage);
            let (q, negated) = match q {
                CTy::Neg(inner) if sabotage != Sabotage::ReferenceNeg => (*inner, true),
                CTy::Neg(inner) => (*inner, false),
                q => (q, false),
            };
            let receiving = matches!(t, Type::In(..)) ^ negated ^ dual;
            let cont = Box::new(spine(s, env, dual, sabotage));
            if receiving {
                CTy::In(Box::new(q), cont)
            } else {
                CTy::Out(Box::new(q), cont)
            }
        }
        // Non-session constructs under a pending Dual are ill-kinded;
        // reify the dual around the positively canonicalized form, as
        // the production normalizer does.
        _ if dual => CTy::DualWrap(Box::new(spine(t, env, false, sabotage))),
        Type::Unit => CTy::Unit,
        Type::Base(b) => CTy::Base(*b),
        Type::Arrow(a, b) => CTy::Arrow(
            Box::new(spine(a, env, false, sabotage)),
            Box::new(spine(b, env, false, sabotage)),
        ),
        Type::Pair(a, b) => CTy::Pair(
            Box::new(spine(a, env, false, sabotage)),
            Box::new(spine(b, env, false, sabotage)),
        ),
        Type::Forall(v, k, body) => {
            env.push(*v);
            let body = spine(body, env, false, sabotage);
            env.pop();
            CTy::Forall(*k, Box::new(body))
        }
        Type::Proto(name, args) => CTy::Proto(
            *name,
            args.iter().map(|a| payload(a, env, sabotage)).collect(),
        ),
        Type::Data(name, args) => CTy::Data(
            *name,
            args.iter().map(|a| payload(a, env, sabotage)).collect(),
        ),
        Type::Neg(_) => {
            // A negation in spine position (top level of a protocol
            // argument was already handled by `payload`; this is the
            // robustness path for odd inputs).
            payload(t, env, sabotage)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_core::Session;

    #[test]
    fn agrees_with_the_paper_worked_examples() {
        // Dual (?(-Int).α) ≡ ?Int.Dual α
        let t = Type::dual(Type::input(Type::neg(Type::int()), Type::var("a")));
        let u = Type::input(Type::int(), Type::dual(Type::var("a")));
        assert!(equivalent(&t, &u));
        // Dual End? ≡ End!
        assert!(equivalent(&Type::dual(Type::EndIn), &Type::EndOut));
        // ?(-T).S ≡ !T.S
        let t = Type::input(Type::neg(Type::int()), Type::EndOut);
        let u = Type::output(Type::int(), Type::EndOut);
        assert!(equivalent(&t, &u));
        // Dual is involutory.
        let s = Type::output(Type::int(), Type::input(Type::bool(), Type::var("s")));
        assert!(equivalent(&Type::dual(Type::dual(s.clone())), &s));
    }

    #[test]
    fn alpha_equivalence_via_de_bruijn() {
        let t = Type::forall("a", Kind::Session, Type::var("a"));
        let u = Type::forall("b", Kind::Session, Type::var("b"));
        assert!(equivalent(&t, &u));
        let free = Type::forall("a", Kind::Session, Type::var("c"));
        let bound = Type::forall("c", Kind::Session, Type::var("c"));
        assert!(!equivalent(&free, &bound));
    }

    #[test]
    fn nominality_and_negation_parity() {
        let t = Type::output(Type::proto("RefP1", vec![]), Type::EndOut);
        let u = Type::output(Type::proto("RefP2", vec![]), Type::EndOut);
        assert!(!equivalent(&t, &u));
        // -(-P) ≡ P in argument position.
        let t = Type::proto("RefP1", vec![Type::neg(Type::neg(Type::int()))]);
        let u = Type::proto("RefP1", vec![Type::int()]);
        assert!(equivalent(&t, &u));
        let v = Type::proto("RefP1", vec![Type::neg(Type::int())]);
        assert!(!equivalent(&t, &v));
    }

    #[test]
    fn agrees_with_the_production_oracle_on_random_suites() {
        use algst_gen::suite::{build_suite, SuiteKind};
        for (kind, seed) in [
            (SuiteKind::Equivalent, 314),
            (SuiteKind::NonEquivalent, 159),
        ] {
            let suite = build_suite(kind, 40, seed);
            let mut production = Session::new();
            for case in &suite.cases {
                let want = production.equivalent(&case.instance.ty, &case.other);
                assert_eq!(
                    equivalent(&case.instance.ty, &case.other),
                    want,
                    "reference disagrees with production on\n  {}\n  {}",
                    case.instance.ty,
                    case.other
                );
            }
        }
    }

    #[test]
    fn sabotage_flips_dual_end_verdicts_only_when_enabled() {
        let t = Type::dual(Type::EndIn);
        let u = Type::EndOut;
        assert!(equivalent_with(&t, &u, Sabotage::None));
        assert!(!equivalent_with(&t, &u, Sabotage::ReferenceDual));
        let a = Type::input(Type::neg(Type::int()), Type::EndOut);
        let b = Type::output(Type::int(), Type::EndOut);
        assert!(equivalent_with(&a, &b, Sabotage::None));
        assert!(!equivalent_with(&a, &b, Sabotage::ReferenceNeg));
    }
}
