//! The **tenant-isolation** oracle family: no verdict, `TypeId`, or
//! cache entry may cross tenants of one [`TenantRegistry`] — including
//! across an eviction/recreation cycle.
//!
//! One case is fully determined by a `case_seed` (drawn from the fuzz
//! run's root RNG and recorded in the counterexample header, so replay
//! needs nothing else): it spins up a registry with `N` dynamically
//! created tenants over **disjoint generated type universes**, then
//! checks, in order,
//!
//! 1. every tenant's verdict matches a fresh single-threaded
//!    [`TypeStore`] oracle on its own pair, cold on first contact and
//!    warm on the second (the per-tenant verdict cache works);
//! 2. tenant stores are pairwise distinct allocations, so a `TypeId`
//!    minted in one tenant cannot be meaningful in another;
//! 3. a tenant asked about a *neighbor's* pair answers correctly but
//!    **cold** — the neighbor's verdict-cache entry did not leak;
//! 4. overflowing `max_tenants` LRU-evicts the coldest tenant, whose
//!    recreation on next contact is **cold again** (no cache survives
//!    the eviction) while its neighbors stay warm.
//!
//! The first violated check aborts the case with a description; a clean
//! case returns `None`.

use algst_core::kind::Kind;
use algst_core::store::TypeStore;
use algst_core::types::Type;
use algst_gen::{equivalent_variant, generate_instance, nonequivalent_mutant, GenConfig};
use algst_server::{Op, Request, Response, TenantConfig, TenantRegistry, TenantView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One tenant's generated universe: a pair plus the fresh-store oracle
/// verdict on it.
struct TenantPair {
    lhs: Type,
    rhs: Type,
    expected: bool,
}

/// Runs one seeded tenant-isolation case; `Some(detail)` describes the
/// first isolation breach, `None` means the case is clean.
pub fn tenant_isolation_disagreement(case_seed: u64) -> Option<String> {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let n = rng.gen_range(2..=4usize);

    // Disjoint universes: each tenant gets its own generated instance
    // (independent draws from one seeded stream), and the expected
    // verdict comes from a store that has never seen another tenant.
    let pairs: Vec<TenantPair> = (0..n)
        .map(|_| {
            let size = rng.gen_range(4..32);
            let inst = generate_instance(&mut rng, &GenConfig::sized(size));
            let truth = rng.gen_range(0..2) == 0;
            let rhs = if truth {
                equivalent_variant(&mut rng, &inst.decls, &inst.ty, Kind::Value, 6)
            } else {
                let mutant =
                    nonequivalent_mutant(&mut rng, &inst.ty).expect("generated spines are mutable");
                equivalent_variant(&mut rng, &inst.decls, &mutant, Kind::Value, 4)
            };
            let mut store = TypeStore::new();
            let (a, b) = (store.intern(&inst.ty), store.intern(&rhs));
            TenantPair {
                lhs: inst.ty,
                rhs,
                expected: store.equivalent_ids(a, b),
            }
        })
        .collect();

    // `max_tenants = n` so creating one extra tenant later forces an
    // LRU eviction.
    let registry = TenantRegistry::new(TenantConfig {
        max_tenants: n,
        ..TenantConfig::default()
    });
    let mut view = registry.view();

    // 1. Own pair: correct and cold, then correct and warm.
    for (t, pair) in pairs.iter().enumerate() {
        let name = format!("tenant{t}");
        match query(&registry, &mut view, &name, pair, 1) {
            (v, _) if v != pair.expected => {
                return Some(format!(
                    "{name} answered {v} for its own pair, store oracle says {} ({} vs {})",
                    pair.expected, pair.lhs, pair.rhs
                ))
            }
            (_, true) => {
                return Some(format!(
                    "{name} was warm on first contact — a cache entry predates the tenant"
                ))
            }
            _ => {}
        }
        let (v, warm) = query(&registry, &mut view, &name, pair, 2);
        if v != pair.expected || !warm {
            return Some(format!(
                "{name} second query: verdict {v} (expected {}), warm {warm} (expected true)",
                pair.expected
            ));
        }
    }

    // 2. Distinct stores: a TypeId minted by one tenant has no meaning
    // in another because the allocations themselves are disjoint.
    let handles = registry.handles();
    for (i, a) in handles.iter().enumerate() {
        for b in handles.iter().skip(i + 1) {
            if Arc::ptr_eq(a.engine().store(), b.engine().store()) {
                return Some(format!(
                    "tenants {} and {} share one store allocation",
                    a.name(),
                    b.name()
                ));
            }
        }
    }

    // 3. A neighbor's pair answers correctly but cold: tenant0 has
    // never seen tenant1's universe, even though tenant1 is warm on it.
    let (v, warm) = query(&registry, &mut view, "tenant0", &pairs[1], 3);
    if v != pairs[1].expected {
        return Some(format!(
            "tenant0 answered {v} for tenant1's pair, store oracle says {}",
            pairs[1].expected
        ));
    }
    if warm {
        return Some("tenant0 was warm on tenant1's pair — a verdict crossed tenants".into());
    }

    // 4. Eviction/recreation cycle. Touch every tenant but tenant1 so
    // tenant1 is the LRU victim when the extra tenant overflows the cap.
    for (t, pair) in pairs.iter().enumerate() {
        if t != 1 {
            query(&registry, &mut view, &format!("tenant{t}"), pair, 4);
        }
    }
    query(&registry, &mut view, "extra", &pairs[0], 5);
    if registry.resolve(&mut view, "tenant1").is_some() {
        return Some("overflowing max_tenants did not evict the LRU tenant".into());
    }
    let stats = registry.stats();
    if stats.evictions != 1 || stats.tenants != n as u64 {
        return Some(format!(
            "eviction bookkeeping: {} evictions, {} live tenants (expected 1 and {n})",
            stats.evictions, stats.tenants
        ));
    }
    // Re-touch every survivor so the recreation's own LRU eviction (the
    // registry is still at capacity) lands on "extra", not on a tenant
    // whose warmth the final check still wants to observe.
    for (t, pair) in pairs.iter().enumerate() {
        if t != 1 {
            query(&registry, &mut view, &format!("tenant{t}"), pair, 6);
        }
    }
    // The evicted tenant comes back cold: its old cache died with the
    // engine, so nothing it had warmed can resurface.
    let (v, warm) = query(&registry, &mut view, "tenant1", &pairs[1], 7);
    if v != pairs[1].expected || warm {
        return Some(format!(
            "recreated tenant1: verdict {v} (expected {}), warm {warm} (expected cold)",
            pairs[1].expected
        ));
    }
    if registry.stats().recreations != 1 {
        return Some("recreating an evicted tenant did not count as a recreation".into());
    }
    // …while an undisturbed neighbor kept its warmth through the cycle.
    let (_, warm) = query(&registry, &mut view, "tenant0", &pairs[0], 8);
    if !warm {
        return Some("evicting tenant1 made tenant0 cold — engines are entangled".into());
    }
    None
}

/// One equiv request through the registry's one-shot path; returns
/// `(verdict, warm)`.
fn query(
    registry: &TenantRegistry,
    view: &mut TenantView,
    name: &str,
    pair: &TenantPair,
    id: u64,
) -> (bool, bool) {
    let responses = registry.process(
        view,
        name,
        vec![Request {
            id,
            op: Op::Equiv {
                lhs: pair.lhs.to_string(),
                rhs: pair.rhs.to_string(),
            },
        }],
    );
    match responses.as_slice() {
        [Response::Equiv { verdict, warm, .. }] => (*verdict, *warm),
        other => panic!("tenant isolation oracle protocol breach: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_cases_are_clean_and_deterministic() {
        for case_seed in [1u64, 42, 9_001] {
            assert_eq!(tenant_isolation_disagreement(case_seed), None);
            // Replay determinism: the same seed runs the same case.
            assert_eq!(tenant_isolation_disagreement(case_seed), None);
        }
    }
}
