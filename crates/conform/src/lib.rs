//! # algst-conform
//!
//! Cross-layer **differential fuzzing** for the whole AlgST stack, with
//! a delta-debugging reducer. PRs 2–3 stacked a hash-consed store and a
//! sharded concurrent store on top of the paper's equivalence claim with
//! per-layer spot checks; this crate is the adversarial harness that
//! hammers every layer against independent oracles:
//!
//! | family   | generated input            | cross-checked answers                         |
//! |----------|----------------------------|-----------------------------------------------|
//! | equiv    | protocol decls + type pair | `TypeStore` ids · `SharedStore`/`WorkerStore` · naive reference ([`mod@reference`]) · FreeST bisimulation · server [`Engine`](algst_server::Engine) over the wire format · by-construction ground truth |
//! | syntax   | types and whole modules    | print → reparse → structural AST equality      |
//! | check    | well-typed + damaged modules | verdict stable under α-renaming, `-(-T)` payloads, `Dual (Dual ·)` |
//! | runtime  | client/server modules      | terminates with predicted output or hits the step budget; never panics, never errors |
//! | server-check | well-typed + damaged modules | engine `check` op (module cache, injected session) vs direct in-process check |
//! | tenant-isolation | N tenants over disjoint generated universes | no verdict, `TypeId`, or cache entry crosses tenants of one [`TenantRegistry`](algst_server::TenantRegistry), including across an eviction/recreation cycle ([`mod@tenants`]) |
//!
//! Every counterexample is minimized by the reducer ([`reduce`]) —
//! AST-level hierarchical reduction re-validated against the *specific*
//! oracle pair that disagreed — and written to `conform-failures/` as a
//! replayable `.algst` file carrying its seed in the header. The
//! vendored proptest shim's new shrinking covers strategy-generated
//! values; this reducer covers the imperative `algst-gen` generators.
//!
//! The [`reference::Sabotage`] hook deliberately breaks one oracle so
//! tests (and `algst fuzz --sabotage reference-dual`) can prove the
//! loop detects and minimizes real bugs: the acceptance bar is a
//! replayable counterexample **under 15 AST nodes**.
//!
//! Entry points: [`fuzz::run_fuzz`] (the `algst fuzz` subcommand) and
//! [`fuzz::replay_file`] (`algst fuzz --replay FILE`).

pub mod fuzz;
pub mod oracles;
pub mod reduce;
pub mod reference;
pub mod tenants;

pub use fuzz::{replay_file, run_fuzz, Failure, FuzzConfig, FuzzReport, ReplayOutcome};
pub use reference::Sabotage;
