//! Delta-debugging reducers.
//!
//! The vendored proptest shim can only shrink what its own strategies
//! generated; the fuzzer's instances come from `algst-gen`'s imperative
//! generators, so `conform` ships its own **hierarchical AST reducer**:
//! coarse moves first (drop whole protocol declarations, hoist whole
//! subtrees), fine moves after (drop constructors, drop constructor
//! arguments, replace leaves), every candidate re-validated against the
//! failing oracle, to a fixpoint.
//!
//! Candidates that leave the well-kinded fragment are filtered *before*
//! consulting the oracle, so a minimized counterexample is always a
//! legal input — a disagreement on garbage would be a much weaker
//! artifact than a disagreement on a well-kinded 3-node type.

use algst_core::kind::Kind;
use algst_core::kindcheck::KindCtx;
use algst_core::protocol::{Ctor, Declarations, ProtocolDecl};
use algst_core::types::Type;
use std::sync::Arc;

/// A failing equivalence case under reduction: the declarations and the
/// two compared types.
#[derive(Clone, Debug)]
pub struct EquivCase {
    pub decls: Declarations,
    pub lhs: Type,
    pub rhs: Type,
}

impl EquivCase {
    /// Total AST size (the acceptance measure for minimized
    /// counterexamples): both types plus every constructor argument of
    /// every declaration.
    pub fn node_count(&self) -> usize {
        let decl_nodes: usize = self
            .decls
            .protocols()
            .map(|p| {
                p.ctors
                    .iter()
                    .map(|c| 1 + c.args.iter().map(Type::node_count).sum::<usize>())
                    .sum::<usize>()
            })
            .sum();
        self.lhs.node_count() + self.rhs.node_count() + decl_nodes
    }

    /// Both types are well-kinded value types under the declarations.
    fn well_kinded(&self) -> bool {
        let mut ctx = KindCtx::new(&self.decls);
        let ok = |t: &Type, ctx: &mut KindCtx| {
            ctx.synth(t)
                .map(|k| k.is_subkind_of(Kind::Value))
                .unwrap_or(false)
        };
        ok(&self.lhs, &mut ctx) && ok(&self.rhs, &mut ctx)
    }
}

/// Reduces `case` while `still_fails` holds, to a fixpoint (bounded by
/// `max_rounds` full passes). `still_fails` is only consulted on
/// well-kinded candidates; the input case itself must fail.
pub fn reduce_equiv_case(
    case: &EquivCase,
    max_rounds: usize,
    still_fails: &mut dyn FnMut(&EquivCase) -> bool,
) -> EquivCase {
    let mut current = case.clone();
    for _ in 0..max_rounds {
        let mut progressed = false;
        for candidate in candidates(&current) {
            if candidate.node_count() >= current.node_count() {
                continue;
            }
            if candidate.well_kinded() && still_fails(&candidate) {
                current = candidate;
                progressed = true;
                break; // restart the pass from the smaller case
            }
        }
        if !progressed {
            return current;
        }
    }
    current
}

/// Reduces a single type while `still_fails` holds (used by the syntax
/// round-trip oracle, where kinds are irrelevant).
pub fn reduce_type(
    ty: &Type,
    max_rounds: usize,
    still_fails: &mut dyn FnMut(&Type) -> bool,
) -> Type {
    let mut current = ty.clone();
    for _ in 0..max_rounds {
        let mut progressed = false;
        for candidate in type_reductions(&current) {
            if candidate.node_count() < current.node_count() && still_fails(&candidate) {
                current = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
    current
}

/// All one-step reduction candidates, coarse moves first.
fn candidates(case: &EquivCase) -> Vec<EquivCase> {
    let mut out = Vec::new();

    // 0. Lockstep moves on both sides at once. Single-side moves cannot
    //    walk down a spine whose two sides only disagree *as a pair*
    //    (e.g. `Dual (!A.S)` vs `?A.S′`): dropping the head on one side
    //    alone destroys the relationship and the oracles agree again.
    for (lhs, rhs) in paired_reductions(&case.lhs, &case.rhs) {
        out.push(EquivCase {
            decls: case.decls.clone(),
            lhs,
            rhs,
        });
    }

    // 1. Drop a whole protocol declaration (kind filtering rejects the
    //    candidate if anything still references it).
    let names: Vec<_> = case.decls.protocols().map(|p| p.name).collect();
    for drop_name in &names {
        let mut decls = Declarations::new();
        for p in case.decls.protocols() {
            if p.name != *drop_name {
                let _ = decls.add_protocol(p.clone());
            }
        }
        out.push(EquivCase {
            decls,
            lhs: case.lhs.clone(),
            rhs: case.rhs.clone(),
        });
    }

    // 2. Hoist subtrees / replace leaves in either compared type.
    for side in [true, false] {
        let ty = if side { &case.lhs } else { &case.rhs };
        for replaced in type_reductions(ty) {
            let (lhs, rhs) = if side {
                (replaced, case.rhs.clone())
            } else {
                (case.lhs.clone(), replaced)
            };
            out.push(EquivCase {
                decls: case.decls.clone(),
                lhs,
                rhs,
            });
        }
    }

    // 3. Drop one constructor of one protocol (keeping at least one).
    // 4. Drop one argument of one constructor.
    for target in &names {
        let original = case.decls.protocol(*target).expect("iterating names");
        let mut variants: Vec<ProtocolDecl> = Vec::new();
        if original.ctors.len() > 1 {
            for drop_ix in 0..original.ctors.len() {
                let mut p = original.clone();
                p.ctors.remove(drop_ix);
                variants.push(p);
            }
        }
        for (cix, ctor) in original.ctors.iter().enumerate() {
            for aix in 0..ctor.args.len() {
                let mut p = original.clone();
                let mut args = ctor.args.clone();
                args.remove(aix);
                p.ctors[cix] = Ctor {
                    tag: ctor.tag,
                    args,
                };
                variants.push(p);
            }
        }
        for variant in variants {
            let mut decls = Declarations::new();
            for p in case.decls.protocols() {
                let replacement = if p.name == *target { &variant } else { p };
                let _ = decls.add_protocol(replacement.clone());
            }
            if decls.validate().is_err() {
                continue;
            }
            out.push(EquivCase {
                decls,
                lhs: case.lhs.clone(),
                rhs: case.rhs.clone(),
            });
        }
    }

    out
}

/// Lockstep reductions applied to both sides simultaneously, modulo
/// each side's leading `Dual` wrappers: drop the head message of both
/// spines, simplify both head payloads to `Int`, or instantiate both
/// leading quantifiers with `End!`.
fn paired_reductions(lhs: &Type, rhs: &Type) -> Vec<(Type, Type)> {
    fn peel(t: &Type) -> (usize, &Type) {
        match t {
            Type::Dual(inner) => {
                let (n, core) = peel(inner);
                (n + 1, core)
            }
            _ => (0, t),
        }
    }
    fn rewrap(n: usize, t: Type) -> Type {
        (0..n).fold(t, |acc, _| Type::dual(acc))
    }
    fn with_payload(msg: &Type, payload: Type) -> Type {
        match msg {
            Type::In(_, s) => Type::input(payload, (**s).clone()),
            Type::Out(_, s) => Type::output(payload, (**s).clone()),
            _ => unreachable!("callers match messages"),
        }
    }

    fn with_cont(msg: &Type, cont: Type) -> Type {
        match msg {
            Type::In(p, _) => Type::input((**p).clone(), cont),
            Type::Out(p, _) => Type::output((**p).clone(), cont),
            _ => unreachable!("callers match messages"),
        }
    }

    let (ln, lcore) = peel(lhs);
    let (rn, rcore) = peel(rhs);
    let mut out = Vec::new();
    if let (Type::In(lp, ls) | Type::Out(lp, ls), Type::In(rp, rs) | Type::Out(rp, rs)) =
        (lcore, rcore)
    {
        // Drop both heads.
        out.push((rewrap(ln, (**ls).clone()), rewrap(rn, (**rs).clone())));
        // Truncate both continuations (the disagreement often lives in
        // the head; one step amputates an arbitrarily long tail). The
        // right End polarity pairing depends on the surrounding duals,
        // so all four are proposed and the oracle filter picks.
        if **ls != Type::EndOut && **ls != Type::EndIn {
            for lend in [Type::EndOut, Type::EndIn] {
                for rend in [Type::EndOut, Type::EndIn] {
                    out.push((
                        rewrap(ln, with_cont(lcore, lend.clone())),
                        rewrap(rn, with_cont(rcore, rend)),
                    ));
                }
            }
        }
        // Hoist the k-th child of both payloads in lockstep (descends
        // into pair components, protocol arguments, negations).
        let (lpc, rpc) = (children(lp), children(rp));
        for k in 0..lpc.len().min(rpc.len()) {
            out.push((
                rewrap(ln, with_payload(lcore, lpc[k].clone())),
                rewrap(rn, with_payload(rcore, rpc[k].clone())),
            ));
        }
        // Simplify both payloads.
        if **lp != Type::int() || **rp != Type::int() {
            out.push((
                rewrap(ln, with_payload(lcore, Type::int())),
                rewrap(rn, with_payload(rcore, Type::int())),
            ));
        }
    }
    if let (Type::Forall(lv, _, lb), Type::Forall(rv, _, rb)) = (lcore, rcore) {
        // Instantiate both binders with the same closed leaf.
        out.push((
            rewrap(ln, algst_core::subst::subst_type(lb, *lv, &Type::EndOut)),
            rewrap(rn, algst_core::subst::subst_type(rb, *rv, &Type::EndOut)),
        ));
    }
    out
}

/// One-step reductions of a single type: for every node position, hoist
/// each child into the position, or replace the node by a minimal leaf.
/// Coarse (near the root) before fine (deep positions), because the
/// enumeration is pre-order.
fn type_reductions(ty: &Type) -> Vec<Type> {
    let mut out = Vec::new();
    let positions = ty.node_count();
    for pos in 0..positions {
        let subtree = nth_subtree(ty, pos).expect("position enumerated");
        // Involution unwrapping: `Dual (Dual x) → x`, `-(-x) → x` keep
        // equivalence, so they survive the oracle filter where a
        // one-layer hoist (which flips meaning) would not.
        match subtree {
            Type::Dual(inner) => {
                if let Type::Dual(x) = &**inner {
                    out.push(replace_nth(ty, pos, (**x).clone()));
                }
            }
            Type::Neg(inner) => {
                if let Type::Neg(x) = &**inner {
                    out.push(replace_nth(ty, pos, (**x).clone()));
                }
            }
            _ => {}
        }
        // Hoist each child of the node at `pos` into its place.
        for child in children(subtree) {
            out.push(replace_nth(ty, pos, child.clone()));
        }
        // Replace the node with each minimal leaf (skip no-ops).
        for leaf in [Type::EndOut, Type::EndIn, Type::int(), Type::Unit] {
            if *subtree != leaf {
                out.push(replace_nth(ty, pos, leaf));
            }
        }
    }
    out
}

fn children(ty: &Type) -> Vec<&Type> {
    match ty {
        Type::Unit | Type::Base(_) | Type::Var(_) | Type::EndIn | Type::EndOut => vec![],
        Type::Arrow(a, b) | Type::Pair(a, b) | Type::In(a, b) | Type::Out(a, b) => vec![a, b],
        Type::Forall(_, _, t) | Type::Dual(t) | Type::Neg(t) => vec![t],
        Type::Proto(_, args) | Type::Data(_, args) => args.iter().collect(),
    }
}

/// The `pos`-th node in pre-order.
fn nth_subtree(ty: &Type, pos: usize) -> Option<&Type> {
    fn go<'a>(ty: &'a Type, seen: &mut usize, pos: usize) -> Option<&'a Type> {
        if *seen == pos {
            return Some(ty);
        }
        *seen += 1;
        for c in children(ty) {
            if let Some(found) = go(c, seen, pos) {
                return Some(found);
            }
        }
        None
    }
    go(ty, &mut 0, pos)
}

/// Replaces the `pos`-th node (pre-order) with `new`.
fn replace_nth(ty: &Type, pos: usize, new: Type) -> Type {
    let mut seen = 0usize;
    replace_walk(ty, &mut seen, pos, &new)
}

fn replace_walk(ty: &Type, seen: &mut usize, pos: usize, new: &Type) -> Type {
    if *seen == pos {
        *seen += 1;
        return new.clone();
    }
    *seen += 1;
    match ty {
        Type::Unit | Type::Base(_) | Type::Var(_) | Type::EndIn | Type::EndOut => ty.clone(),
        Type::Arrow(a, b) => Type::Arrow(
            Arc::new(replace_walk(a, seen, pos, new)),
            Arc::new(replace_walk(b, seen, pos, new)),
        ),
        Type::Pair(a, b) => Type::Pair(
            Arc::new(replace_walk(a, seen, pos, new)),
            Arc::new(replace_walk(b, seen, pos, new)),
        ),
        Type::In(a, b) => Type::In(
            Arc::new(replace_walk(a, seen, pos, new)),
            Arc::new(replace_walk(b, seen, pos, new)),
        ),
        Type::Out(a, b) => Type::Out(
            Arc::new(replace_walk(a, seen, pos, new)),
            Arc::new(replace_walk(b, seen, pos, new)),
        ),
        Type::Forall(v, k, t) => Type::Forall(*v, *k, Arc::new(replace_walk(t, seen, pos, new))),
        Type::Dual(t) => Type::Dual(Arc::new(replace_walk(t, seen, pos, new))),
        Type::Neg(t) => Type::Neg(Arc::new(replace_walk(t, seen, pos, new))),
        Type::Proto(n, args) => Type::Proto(
            *n,
            args.iter()
                .map(|a| replace_walk(a, seen, pos, new))
                .collect(),
        ),
        Type::Data(n, args) => Type::Data(
            *n,
            args.iter()
                .map(|a| replace_walk(a, seen, pos, new))
                .collect(),
        ),
    }
}

/// Reduces a failing *program* by whole declarations: repeatedly drops
/// any declaration whose removal keeps the oracle failing. (Level-1
/// hierarchical delta debugging; expression-level moves are left to the
/// kind-aware type reducer, which covers the acceptance-critical
/// equivalence family.)
pub fn reduce_program(
    source: &str,
    max_rounds: usize,
    still_fails: &mut dyn FnMut(&str) -> bool,
) -> String {
    let Ok(ast) = algst_syntax::parse_program(source) else {
        return source.to_owned();
    };
    let mut decls = ast.decls;
    for _ in 0..max_rounds {
        let mut progressed = false;
        let mut ix = 0;
        while ix < decls.len() {
            if decls.len() <= 1 {
                break;
            }
            let mut fewer = decls.clone();
            fewer.remove(ix);
            let candidate = algst_syntax::printer::program_to_source(&algst_syntax::ast::Program {
                decls: fewer.clone(),
            });
            if still_fails(&candidate) {
                decls = fewer;
                progressed = true;
            } else {
                ix += 1;
            }
        }
        if !progressed {
            break;
        }
    }
    algst_syntax::printer::program_to_source(&algst_syntax::ast::Program { decls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{self, Sabotage};
    use algst_gen::{generate_instance, nonequivalent_mutant, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Pushes a `Dual` through a generated spine by hand (the C-Dual
    /// rules): flips directions and ends, reifies `Dual` on variables,
    /// honours payload negation parity. `Dual(t)` and `manual_dual(t)`
    /// are equivalent for every generated session type.
    fn manual_dual(t: &Type) -> Type {
        match t {
            Type::In(p, s) => match &**p {
                Type::Neg(x) => Type::input((**x).clone(), manual_dual(s)),
                _ => Type::output((**p).clone(), manual_dual(s)),
            },
            Type::Out(p, s) => match &**p {
                Type::Neg(x) => Type::output((**x).clone(), manual_dual(s)),
                _ => Type::input((**p).clone(), manual_dual(s)),
            },
            Type::EndIn => Type::EndOut,
            Type::EndOut => Type::EndIn,
            other => Type::dual(other.clone()),
        }
    }

    /// The acceptance-criterion scenario in miniature: a sabotaged
    /// reference oracle (pending `Dual` dropped on `End`) disagrees with
    /// the store on a generated `Dual`-vs-pushed-`Dual` pair; the
    /// reducer must shrink the disagreement below 15 AST nodes.
    #[test]
    fn sabotaged_disagreement_reduces_below_15_nodes() {
        let mut rng = StdRng::seed_from_u64(1234);
        let mut store = algst_core::store::TypeStore::new();
        let mut disagrees = |case: &EquivCase| {
            let (a, b) = (store.intern(&case.lhs), store.intern(&case.rhs));
            let production = store.equivalent_ids(a, b);
            let sabotaged =
                reference::equivalent_with(&case.lhs, &case.rhs, Sabotage::ReferenceDual);
            production != sabotaged
        };
        let mut reduced_any = false;
        for i in 0..50 {
            let cfg = GenConfig {
                poly_tail: 0.0, // End-terminated spines: the sabotage's blind spot
                ..GenConfig::sized(12 + i % 30)
            };
            let inst = generate_instance(&mut rng, &cfg);
            let case = EquivCase {
                decls: inst.decls.clone(),
                lhs: Type::dual(inst.ty.clone()),
                rhs: manual_dual(&inst.ty),
            };
            if !disagrees(&case) {
                continue;
            }
            let minimized = reduce_equiv_case(&case, 64, &mut disagrees);
            assert!(
                minimized.node_count() < 15,
                "not minimized: {} nodes, {} vs {}",
                minimized.node_count(),
                minimized.lhs,
                minimized.rhs
            );
            assert!(disagrees(&minimized), "reduction lost the failure");
            reduced_any = true;
            break;
        }
        assert!(reduced_any, "no disagreement found to reduce");
    }

    #[test]
    fn reduction_preserves_failure_and_monotonically_shrinks() {
        let mut rng = StdRng::seed_from_u64(99);
        let inst = generate_instance(&mut rng, &GenConfig::sized(40));
        let mutant = nonequivalent_mutant(&mut rng, &inst.ty).expect("mutable");
        let case = EquivCase {
            decls: inst.decls.clone(),
            lhs: inst.ty.clone(),
            rhs: mutant,
        };
        // "Failure" here: the two sides are not equivalent (a property
        // reduction must preserve while stripping everything else).
        let mut fails = |c: &EquivCase| !reference::equivalent(&c.lhs, &c.rhs);
        assert!(fails(&case));
        let minimized = reduce_equiv_case(&case, 64, &mut fails);
        assert!(fails(&minimized));
        assert!(minimized.node_count() <= case.node_count());
        assert!(
            minimized.node_count() < 15,
            "a bare inequivalence should reduce to a leaf pair, got {} nodes",
            minimized.node_count()
        );
    }

    #[test]
    fn program_reducer_drops_irrelevant_declarations() {
        let source = "\
a : Unit\na = ()\nb : Unit\nb = ()\nneedle : Int\nneedle = ()\nmain : Unit\nmain = ()\n";
        let mut session = algst_core::Session::new();
        let mut fails =
            |candidate: &str| algst_check::check_source_in(&mut session, candidate).is_err();
        assert!(fails(source));
        let reduced = reduce_program(source, 16, &mut fails);
        assert!(fails(&reduced));
        assert!(
            reduced.lines().count() <= 2,
            "expected only the ill-typed needle to survive:\n{reduced}"
        );
    }
}
