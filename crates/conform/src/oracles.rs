//! The five oracle families the fuzzer cross-checks.
//!
//! 1. **Equivalence** ([`EquivOracles`]) — one generated pair of types,
//!    five independent answers: the single-threaded interned
//!    [`TypeStore`], a [`Session`] over a private shared store (the
//!    concurrent path), the naive reference semantics
//!    ([`crate::reference`]), the FreeST bisimulation baseline on the
//!    translated pair (budgeted, with one adaptive 10× retry), and the
//!    server [`Engine`] fed the pretty-printed pair over the wire
//!    protocol — which transitively also exercises the printer, the
//!    parser, and the server's nominal resolution.
//! 2. **Syntax** ([`type_round_trip`], [`program_round_trip`]) —
//!    print → reparse → structural equality, closing the bug class of
//!    the PR 3 parenthesized-applied-name regression.
//! 3. **Checking** ([`check_metamorphic`]) — α-renaming,
//!    equivalent-type substitution (`T ↦ -(-T)` on payloads), and
//!    dual-of-dual wrapping preserve the checker's verdict.
//! 4. **Runtime** ([`run_program`]) — a well-typed generated program
//!    terminates with its predicted output or hits the step budget;
//!    it never panics and never returns a runtime error.
//! 5. **Server check-op** ([`EquivOracles::server_check_disagreement`])
//!    — whole generated modules (well-typed and deliberately damaged)
//!    sent through the engine's `check`/module-cache path must get the
//!    same ok/reject verdict as a direct in-process check against an
//!    unrelated session. Possible at all only because the engine is now
//!    fully session-parameterized.

use crate::reference::{self, Sabotage};
use algst_core::protocol::Declarations;
use algst_core::store::TypeStore;
use algst_core::types::Type;
use algst_core::Session;
use algst_gen::to_grammar::to_grammar;
use algst_gen::GenProgram;
use algst_server::{Engine, Op, Request, Response};
use algst_syntax::ast::{Decl, Program, SType};
use algst_syntax::{parse_program, printer};
use freest::{bisimilar, BisimResult, Grammar};

// ----------------------------------------------------------- equivalence

/// The five equivalence backends, kept warm across a whole fuzz run so
/// the memoized paths (the ones production traffic hits) are the ones
/// under test.
pub struct EquivOracles {
    store: TypeStore,
    /// The concurrent path: a [`Session`] sibling of the engine's store.
    session: Session,
    /// A session on a store unrelated to everything above, for the
    /// direct side of the server check-op family.
    direct: Session,
    engine: Engine,
    sabotage: Sabotage,
    /// Bisimulation expansion budget; exhaustion triggers one retry at
    /// 10× and is then recorded, not failed (the paper's own
    /// observation about the baseline).
    pub freest_budget: u64,
}

/// One pair's verdicts. `freest` is `None` when the (retried) budget
/// ran out or the instance falls outside the translatable fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivVerdicts {
    pub store: bool,
    pub shared: bool,
    pub reference: bool,
    pub server: bool,
    pub freest: Option<bool>,
    /// The base FreeST budget was exhausted and the pair was retried at
    /// 10× (whatever the outcome of the retry).
    pub freest_retried: bool,
}

impl EquivVerdicts {
    /// The first disagreeing oracle pair, as `(name_a, name_b)` with the
    /// interned store as the pivot, or a truth mismatch against the
    /// by-construction ground `truth`.
    pub fn disagreement(&self, truth: Option<bool>) -> Option<(String, String)> {
        let pivot = self.store;
        for (name, verdict) in [
            ("shared", Some(self.shared)),
            ("reference", Some(self.reference)),
            ("server", Some(self.server)),
            ("freest", self.freest),
        ] {
            if let Some(v) = verdict {
                if v != pivot {
                    return Some(("store".into(), name.into()));
                }
            }
        }
        if let Some(t) = truth {
            if pivot != t {
                return Some(("store".into(), "ground-truth".into()));
            }
        }
        None
    }
}

/// Outcome of one FreeST bisimulation attempt at a fixed budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FreestOutcome {
    /// The bisimulation decided the pair.
    Verdict(bool),
    /// The expansion budget ran out before a decision.
    Budget,
    /// The pair is outside the FreeST-translatable fragment.
    Untranslatable,
}

impl EquivOracles {
    pub fn new(sabotage: Sabotage, freest_budget: u64) -> EquivOracles {
        // A private session (not the process-global store), so fuzz runs
        // are hermetic and reproducible; the engine is injected a
        // sibling so the server path shares the same warm store across
        // its two workers (crossing threads for real).
        let session = Session::new();
        let engine = Engine::with_session(2, session.sibling());
        EquivOracles {
            store: TypeStore::new(),
            session,
            direct: Session::new(),
            engine,
            sabotage,
            freest_budget,
        }
    }

    /// Runs every backend on one pair. A FreeST budget exhaustion at the
    /// base budget is retried once at 10× ([`EquivVerdicts::freest_retried`]).
    pub fn verdicts(&mut self, decls: &Declarations, lhs: &Type, rhs: &Type) -> EquivVerdicts {
        let (a, b) = (self.store.intern(lhs), self.store.intern(rhs));
        let store = self.store.equivalent_ids(a, b);
        let (a, b) = (self.session.intern(lhs), self.session.intern(rhs));
        let shared = self.session.equivalent_ids(a, b);
        let reference = reference::equivalent_with(lhs, rhs, self.sabotage);
        let server = self.server_verdict(lhs, rhs);
        let (freest, freest_retried) =
            match self.freest_outcome(decls, lhs, rhs, self.freest_budget) {
                FreestOutcome::Verdict(v) => (Some(v), false),
                FreestOutcome::Untranslatable => (None, false),
                FreestOutcome::Budget => {
                    // Adaptive budget: deep-norm instances that exhaust the
                    // default budget usually decide comfortably at 10×.
                    let retry = self.freest_outcome(decls, lhs, rhs, self.freest_budget * 10);
                    match retry {
                        FreestOutcome::Verdict(v) => (Some(v), true),
                        _ => (None, true),
                    }
                }
            };
        EquivVerdicts {
            store,
            shared,
            reference,
            server,
            freest,
            freest_retried,
        }
    }

    /// Like [`EquivOracles::verdicts`] but only the cheap backends — the
    /// reducer re-validates thousands of candidates with this.
    pub fn fast_verdicts(&mut self, lhs: &Type, rhs: &Type) -> EquivVerdicts {
        let (a, b) = (self.store.intern(lhs), self.store.intern(rhs));
        let store = self.store.equivalent_ids(a, b);
        let (a, b) = (self.session.intern(lhs), self.session.intern(rhs));
        let shared = self.session.equivalent_ids(a, b);
        let reference = reference::equivalent_with(lhs, rhs, self.sabotage);
        EquivVerdicts {
            store,
            shared,
            reference,
            server: store, // not consulted by the reducer
            freest: None,
            freest_retried: false,
        }
    }

    /// The interned-store verdict alone (the reducer's pivot).
    pub(crate) fn store_verdict(&mut self, lhs: &Type, rhs: &Type) -> bool {
        let (a, b) = (self.store.intern(lhs), self.store.intern(rhs));
        self.store.equivalent_ids(a, b)
    }

    pub(crate) fn server_verdict(&self, lhs: &Type, rhs: &Type) -> bool {
        let responses = self.engine.process(vec![Request {
            id: 1,
            op: Op::Equiv {
                lhs: lhs.to_string(),
                rhs: rhs.to_string(),
            },
        }]);
        match responses.as_slice() {
            [Response::Equiv { verdict, .. }] => *verdict,
            other => panic!("server oracle protocol breach: {other:?}"),
        }
    }

    pub(crate) fn freest_verdict(
        &mut self,
        decls: &Declarations,
        lhs: &Type,
        rhs: &Type,
    ) -> Option<bool> {
        match self.freest_outcome(decls, lhs, rhs, self.freest_budget) {
            FreestOutcome::Verdict(v) => Some(v),
            _ => None,
        }
    }

    fn freest_outcome(
        &mut self,
        decls: &Declarations,
        lhs: &Type,
        rhs: &Type,
        budget: u64,
    ) -> FreestOutcome {
        let mut g = Grammar::new();
        let (w1, w2) = match (
            to_grammar(&mut self.session, decls, lhs, &mut g),
            to_grammar(&mut self.session, decls, rhs, &mut g),
        ) {
            (Ok(w1), Ok(w2)) => (w1, w2),
            _ => return FreestOutcome::Untranslatable,
        };
        match bisimilar(&mut g, &w1, &w2, budget) {
            BisimResult::Equivalent => FreestOutcome::Verdict(true),
            BisimResult::NotEquivalent => FreestOutcome::Verdict(false),
            BisimResult::Budget => FreestOutcome::Budget,
        }
    }

    // ------------------------------------------------- server check-op

    /// The engine's `check`-op verdict on a whole module (true = well
    /// typed), through the module cache and the worker's session.
    pub(crate) fn engine_check_verdict(&self, source: &str) -> bool {
        let responses = self.engine.process(vec![Request {
            id: 1,
            op: Op::Check {
                source: source.to_owned(),
            },
        }]);
        match responses.as_slice() {
            [Response::Check { ok, .. }] => *ok,
            other => panic!("server check oracle protocol breach: {other:?}"),
        }
    }

    /// Direct in-process check of the same module, against a session
    /// whose store is unrelated to the engine's.
    pub(crate) fn direct_check_verdict(&mut self, source: &str) -> bool {
        algst_check::check_source_in(&mut self.direct, source).is_ok()
    }

    /// The private session the metamorphic/runtime check families run
    /// against — the fuzz loop stays hermetic (nothing touches the
    /// process-global store) and each check syncs only this store's
    /// delta instead of re-mirroring a growing global arena.
    pub(crate) fn checker_session(&mut self) -> &mut Session {
        &mut self.direct
    }

    /// The check-op differential: `Some(detail)` when the engine's
    /// module-cache path and the direct check disagree on `source`.
    pub fn server_check_disagreement(&mut self, source: &str) -> Option<String> {
        let engine = self.engine_check_verdict(source);
        let direct = self.direct_check_verdict(source);
        (engine != direct).then(|| {
            format!("engine check op says ok={engine}, direct check_source_in says ok={direct}")
        })
    }

    /// Deep store-invariant check (arena topology, memo fixpoints,
    /// `intern∘extract` identity) — called periodically by the driver.
    pub fn check_store_invariants(&mut self) -> Result<(), String> {
        self.store.check_invariants()
    }
}

// ---------------------------------------------------------------- syntax

/// Core-type round trip: `Display → parse → nominal resolve` must be the
/// identity up to α (here: structural equality, since resolution is
/// structural). Returns the printed text on failure.
pub fn type_round_trip(t: &Type) -> Result<(), String> {
    let printed = t.to_string();
    let back = algst_server::resolve::type_from_str(&printed)
        .map_err(|e| format!("`{printed}` does not reparse: {e}"))?;
    if back.alpha_eq(t) {
        Ok(())
    } else {
        Err(format!(
            "`{printed}` reparses as `{back}`, structurally different"
        ))
    }
}

/// Surface round trip on a whole module: `parse → to_source → reparse`
/// must reproduce the AST (up to spans and fresh `_` binder names).
pub fn program_round_trip(source: &str) -> Result<(), String> {
    let ast = parse_program(source).map_err(|e| format!("source does not parse: {e}"))?;
    let printed = printer::program_to_source(&ast);
    let back = parse_program(&printed)
        .map_err(|e| format!("printed source does not reparse: {e}\n--- printed ---\n{printed}"))?;
    if printer::program_eq(&ast, &back) {
        Ok(())
    } else {
        Err(format!(
            "print→reparse changed the AST\n--- printed ---\n{printed}"
        ))
    }
}

// -------------------------------------------------------------- checking

/// The metamorphic surface transformations. Each preserves typability.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MetaTransform {
    /// Consistently rename every program-defined lowercase name
    /// (top-level definitions, binders, type variables).
    AlphaRename,
    /// Replace every message payload `T` with `-(-T)` in signatures
    /// (equivalent by C-NegNeg).
    DoubleNegPayloads,
    /// Wrap session-type nodes in signatures in `Dual (Dual ·)`
    /// (equivalent by C-DualInv).
    DualOfDual,
}

pub const META_TRANSFORMS: [MetaTransform; 3] = [
    MetaTransform::AlphaRename,
    MetaTransform::DoubleNegPayloads,
    MetaTransform::DualOfDual,
];

/// Applies `transform` to the parsed module and returns new source.
pub fn apply_transform(source: &str, transform: MetaTransform) -> Result<String, String> {
    let mut ast = parse_program(source).map_err(|e| e.to_string())?;
    match transform {
        MetaTransform::AlphaRename => alpha_rename(&mut ast),
        MetaTransform::DoubleNegPayloads => {
            for_each_signature(&mut ast, &mut |ty| double_neg_payloads(ty))
        }
        MetaTransform::DualOfDual => for_each_signature(&mut ast, &mut |ty| dual_of_dual(ty)),
    }
    Ok(printer::program_to_source(&ast))
}

/// Checks that `transform` preserves the checker's verdict on `source`,
/// against the caller's `session`. Returns the divergence description
/// on failure.
pub fn check_metamorphic(
    session: &mut Session,
    source: &str,
    transform: MetaTransform,
) -> Result<(), String> {
    let before = algst_check::check_source_in(session, source)
        .map(|_| ())
        .map_err(|e| e.to_string());
    let transformed = apply_transform(source, transform)?;
    let after = algst_check::check_source_in(session, &transformed)
        .map(|_| ())
        .map_err(|e| e.to_string());
    if before.is_ok() == after.is_ok() {
        Ok(())
    } else {
        Err(format!(
            "{transform:?} changed the verdict: before {:?}, after {:?}\n--- transformed ---\n{transformed}",
            before.err().unwrap_or_else(|| "ok".into()),
            after.err().unwrap_or_else(|| "ok".into()),
        ))
    }
}

/// Renames every lowercase name the program itself introduces (top-level
/// definition names, term binders, type variables) by a fixed injective
/// suffix, leaving builtins and prelude names untouched. Injectivity
/// plus totality over the program's own names means no capture can be
/// introduced.
fn alpha_rename(ast: &mut Program) {
    use algst_core::symbol::Symbol;
    use std::collections::HashSet;

    let mut ours: HashSet<Symbol> = HashSet::new();
    for d in &ast.decls {
        match d {
            Decl::Signature(s) => {
                ours.insert(s.name);
            }
            Decl::Binding(b) => {
                ours.insert(b.name);
            }
            _ => {}
        }
    }
    let rename = move |s: Symbol, ours: &HashSet<Symbol>, binder: bool| -> Symbol {
        // Fresh `_`-binders keep their placeholder spelling.
        if s.as_str().contains('%') {
            return s;
        }
        if binder || ours.contains(&s) {
            Symbol::intern(&format!("{}_ar", s.as_str()))
        } else {
            s
        }
    };

    // Every *binder* is ours; every *use* is renamed iff its name is a
    // binder somewhere in scope or a top-level definition. Because the
    // program's binder names never collide with builtins (generated
    // names are stamped; builtins like `send` are never rebound by the
    // generator), renaming all binder names uniformly is sound.
    let mut binders: HashSet<Symbol> = ours.clone();
    for d in &ast.decls {
        collect_binders(d, &mut binders);
    }
    let subst = |s: Symbol| rename(s, &binders, binders.contains(&s));

    for d in &mut ast.decls {
        rename_decl(d, &subst);
    }
}

fn collect_binders(d: &Decl, acc: &mut std::collections::HashSet<algst_core::symbol::Symbol>) {
    use algst_syntax::ast::{Param, Pattern, SExpr};
    fn expr(e: &SExpr, acc: &mut std::collections::HashSet<algst_core::symbol::Symbol>) {
        match e {
            SExpr::Lambda(ps, body, _) => {
                acc.extend(ps.iter().copied());
                expr(body, acc);
            }
            SExpr::Let(pat, bound, body, _) => {
                match pat {
                    Pattern::Var(x) => {
                        acc.insert(*x);
                    }
                    Pattern::Pair(x, y) => {
                        acc.insert(*x);
                        acc.insert(*y);
                    }
                    Pattern::Unit | Pattern::Wild => {}
                }
                expr(bound, acc);
                expr(body, acc);
            }
            SExpr::Case(s, arms, _) => {
                expr(s, acc);
                for arm in arms {
                    acc.extend(arm.binders.iter().copied());
                    expr(&arm.body, acc);
                }
            }
            SExpr::App(f, a, _) => {
                expr(f, acc);
                expr(a, acc);
            }
            SExpr::TApp(f, _, _) => expr(f, acc),
            SExpr::BinOp(_, l, r, _) | SExpr::Pair(l, r, _) => {
                expr(l, acc);
                expr(r, acc);
            }
            SExpr::If(c, t, f, _) => {
                expr(c, acc);
                expr(t, acc);
                expr(f, acc);
            }
            SExpr::Lit(..) | SExpr::Var(..) | SExpr::Con(..) | SExpr::Select(..) => {}
        }
    }
    match d {
        Decl::Binding(b) => {
            for p in &b.params {
                match p {
                    Param::Term(x) => {
                        acc.insert(*x);
                    }
                    Param::Types(vs) => acc.extend(vs.iter().copied()),
                    Param::Wild => {}
                }
            }
            expr(&b.body, acc);
        }
        Decl::Signature(s) => collect_type_binders(&s.ty, acc),
        Decl::Alias(a) => {
            acc.extend(a.params.iter().copied());
            collect_type_binders(&a.body, acc);
        }
        Decl::Protocol(td) | Decl::Data(td) => {
            acc.extend(td.params.iter().copied());
        }
    }
}

fn collect_type_binders(
    t: &SType,
    acc: &mut std::collections::HashSet<algst_core::symbol::Symbol>,
) {
    match t {
        SType::Forall(v, _, body, _) => {
            acc.insert(*v);
            collect_type_binders(body, acc);
        }
        SType::Arrow(a, b, _) | SType::Pair(a, b, _) | SType::In(a, b, _) | SType::Out(a, b, _) => {
            collect_type_binders(a, acc);
            collect_type_binders(b, acc);
        }
        SType::Dual(x, _) | SType::Neg(x, _) => collect_type_binders(x, acc),
        SType::Name(_, args, _) => args.iter().for_each(|a| collect_type_binders(a, acc)),
        SType::Unit(_) | SType::Var(..) | SType::EndIn(_) | SType::EndOut(_) => {}
    }
}

fn rename_decl(
    d: &mut Decl,
    subst: &dyn Fn(algst_core::symbol::Symbol) -> algst_core::symbol::Symbol,
) {
    use algst_syntax::ast::{Param, Pattern, SExpr};
    fn ty(t: &mut SType, subst: &dyn Fn(algst_core::symbol::Symbol) -> algst_core::symbol::Symbol) {
        match t {
            SType::Var(v, _) => *v = subst(*v),
            SType::Forall(v, _, body, _) => {
                *v = subst(*v);
                ty(body, subst);
            }
            SType::Arrow(a, b, _)
            | SType::Pair(a, b, _)
            | SType::In(a, b, _)
            | SType::Out(a, b, _) => {
                ty(a, subst);
                ty(b, subst);
            }
            SType::Dual(x, _) | SType::Neg(x, _) => ty(x, subst),
            SType::Name(_, args, _) => args.iter_mut().for_each(|a| ty(a, subst)),
            SType::Unit(_) | SType::EndIn(_) | SType::EndOut(_) => {}
        }
    }
    fn expr(
        e: &mut SExpr,
        subst: &dyn Fn(algst_core::symbol::Symbol) -> algst_core::symbol::Symbol,
    ) {
        match e {
            SExpr::Var(x, _) => *x = subst(*x),
            SExpr::Lambda(ps, body, _) => {
                for p in ps.iter_mut() {
                    *p = subst(*p);
                }
                expr(body, subst);
            }
            SExpr::Let(pat, bound, body, _) => {
                match pat {
                    Pattern::Var(x) => *x = subst(*x),
                    Pattern::Pair(x, y) => {
                        *x = subst(*x);
                        *y = subst(*y);
                    }
                    Pattern::Unit | Pattern::Wild => {}
                }
                expr(bound, subst);
                expr(body, subst);
            }
            SExpr::Case(s, arms, _) => {
                expr(s, subst);
                for arm in arms {
                    for b in arm.binders.iter_mut() {
                        *b = subst(*b);
                    }
                    expr(&mut arm.body, subst);
                }
            }
            SExpr::App(f, a, _) => {
                expr(f, subst);
                expr(a, subst);
            }
            SExpr::TApp(f, tys, _) => {
                expr(f, subst);
                tys.iter_mut().for_each(|t| ty(t, subst));
            }
            SExpr::BinOp(_, l, r, _) | SExpr::Pair(l, r, _) => {
                expr(l, subst);
                expr(r, subst);
            }
            SExpr::If(c, t, f, _) => {
                expr(c, subst);
                expr(t, subst);
                expr(f, subst);
            }
            SExpr::Lit(..) | SExpr::Con(..) | SExpr::Select(..) => {}
        }
    }
    match d {
        Decl::Signature(s) => {
            s.name = subst(s.name);
            ty(&mut s.ty, subst);
        }
        Decl::Binding(b) => {
            b.name = subst(b.name);
            for p in &mut b.params {
                match p {
                    Param::Term(x) => *x = subst(*x),
                    Param::Types(vs) => vs.iter_mut().for_each(|v| *v = subst(*v)),
                    Param::Wild => {}
                }
            }
            expr(&mut b.body, subst);
        }
        Decl::Alias(a) => {
            for p in &mut a.params {
                *p = subst(*p);
            }
            ty(&mut a.body, subst);
        }
        // Protocol/data declarations carry no lowercase names in the
        // generated fragment (unparameterized); leave them alone.
        Decl::Protocol(_) | Decl::Data(_) => {}
    }
}

fn for_each_signature(ast: &mut Program, f: &mut dyn FnMut(&mut SType)) {
    for d in &mut ast.decls {
        if let Decl::Signature(s) = d {
            f(&mut s.ty);
        }
    }
}

/// `T ↦ -(-T)` on every message payload (C-NegNeg keeps equivalence).
fn double_neg_payloads(t: &mut SType) {
    match t {
        SType::In(p, s, _) | SType::Out(p, s, _) => {
            double_neg_payloads(s);
            let span = p.span();
            let old = std::mem::replace(&mut **p, SType::Unit(span));
            **p = SType::Neg(Box::new(SType::Neg(Box::new(old), span)), span);
        }
        SType::Arrow(a, b, _) | SType::Pair(a, b, _) => {
            double_neg_payloads(a);
            double_neg_payloads(b);
        }
        SType::Forall(_, _, body, _) => double_neg_payloads(body),
        SType::Dual(x, _) | SType::Neg(x, _) => double_neg_payloads(x),
        SType::Name(..) | SType::Unit(_) | SType::Var(..) | SType::EndIn(_) | SType::EndOut(_) => {}
    }
}

/// Wraps the outermost session-type nodes in `Dual (Dual ·)` (C-DualInv
/// keeps equivalence; the wrapped node is session-kinded so the result
/// stays well-kinded).
fn dual_of_dual(t: &mut SType) {
    match t {
        SType::In(..) | SType::Out(..) | SType::EndIn(_) | SType::EndOut(_) => {
            let span = t.span();
            let old = std::mem::replace(t, SType::Unit(span));
            *t = SType::Dual(Box::new(SType::Dual(Box::new(old), span)), span);
        }
        SType::Arrow(a, b, _) | SType::Pair(a, b, _) => {
            dual_of_dual(a);
            dual_of_dual(b);
        }
        SType::Forall(_, _, body, _) => dual_of_dual(body),
        SType::Dual(x, _) => dual_of_dual(x),
        SType::Name(..) | SType::Unit(_) | SType::Var(..) | SType::Neg(..) => {}
    }
}

// --------------------------------------------------------------- runtime

/// Outcome of one runtime-oracle run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Terminated with exactly the predicted output.
    Ok,
    /// Hit the declared step budget (deadlock-free by Theorem 5, but the
    /// budget is the paper's own safety net) — not a failure.
    Budget,
    /// Anything else: wrong output, a typed runtime error on a
    /// well-typed program, or a panic.
    Failed(String),
}

/// Checks and runs a generated program under `budget`, classifying the
/// outcome. A panic on any thread *before the budget elapses* is a
/// failure, never a crash of the fuzzer itself. Two accepted
/// limitations of the wall-clock budget: a panic landing after the
/// budget is reported as [`RunOutcome::Budget`], and a run that hits
/// the budget leaves its (blocked) interpreter threads parked for the
/// remainder of the process — generated programs are deadlock-free by
/// construction, so budget hits are rare (0 in the committed runs).
pub fn run_program(
    session: &mut Session,
    program: &GenProgram,
    budget: std::time::Duration,
) -> RunOutcome {
    let module = match algst_check::check_source_in(session, &program.source) {
        Ok(m) => m,
        Err(e) => return RunOutcome::Failed(format!("well-typed program rejected: {e}")),
    };
    let interp = algst_runtime::Interp::new(&module);
    let entry = program.entry.to_owned();
    let runner = interp.clone();
    // Run on a dedicated thread so a panic is observed as a join error
    // instead of masquerading as a timeout (Interp::run_timeout cannot
    // tell the two apart).
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let result = runner.run(&entry);
        let _ = tx.send(result);
    });
    match rx.recv_timeout(budget) {
        Ok(Ok(_)) => {
            let _ = handle.join();
            if interp.output() == program.expected_output {
                RunOutcome::Ok
            } else {
                RunOutcome::Failed(format!(
                    "output mismatch: expected {:?}, got {:?}",
                    program.expected_output,
                    interp.output()
                ))
            }
        }
        Ok(Err(e)) => {
            let _ = handle.join();
            RunOutcome::Failed(format!("runtime error on a well-typed program: {e}"))
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => RunOutcome::Budget,
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            RunOutcome::Failed("interpreter thread panicked".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algst_gen::{generate_program, ProgConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn metamorphic_transforms_preserve_verdicts() {
        let mut rng = StdRng::seed_from_u64(88);
        let mut session = Session::new();
        for damage in [false, true] {
            let cfg = ProgConfig {
                spine: 3,
                choices: 1,
                poly: false,
                damage,
            };
            for _ in 0..6 {
                let p = generate_program(&mut rng, &cfg);
                for t in META_TRANSFORMS {
                    check_metamorphic(&mut session, &p.source, t)
                        .unwrap_or_else(|e| panic!("{t:?} diverged: {e}\n{}", p.source));
                }
            }
        }
    }

    #[test]
    fn round_trips_hold_on_generated_programs() {
        let mut rng = StdRng::seed_from_u64(89);
        for _ in 0..8 {
            let p = generate_program(&mut rng, &ProgConfig::default());
            program_round_trip(&p.source).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn runtime_oracle_accepts_generated_programs() {
        let mut rng = StdRng::seed_from_u64(90);
        let mut session = Session::new();
        for _ in 0..4 {
            let p = generate_program(&mut rng, &ProgConfig::default());
            assert_eq!(
                run_program(&mut session, &p, std::time::Duration::from_secs(20)),
                RunOutcome::Ok,
                "\n{}",
                p.source
            );
        }
    }

    #[test]
    fn equiv_oracles_agree_on_a_small_suite() {
        use algst_gen::suite::{build_suite, SuiteKind};
        let mut oracles = EquivOracles::new(Sabotage::None, 2_000_000);
        for (kind, seed) in [(SuiteKind::Equivalent, 5), (SuiteKind::NonEquivalent, 6)] {
            let suite = build_suite(kind, 12, seed);
            for case in &suite.cases {
                let v = oracles.verdicts(&case.instance.decls, &case.instance.ty, &case.other);
                assert_eq!(
                    v.disagreement(Some(case.equivalent)),
                    None,
                    "disagreement on\n  {}\n  {}\n  {v:?}",
                    case.instance.ty,
                    case.other
                );
            }
        }
        oracles.check_store_invariants().expect("store invariants");
    }

    #[test]
    fn server_check_family_agrees_on_generated_modules() {
        let mut rng = StdRng::seed_from_u64(91);
        let mut oracles = EquivOracles::new(Sabotage::None, 100_000);
        for damage in [false, true] {
            let cfg = ProgConfig {
                spine: 3,
                choices: 1,
                poly: false,
                damage,
            };
            for _ in 0..4 {
                let p = generate_program(&mut rng, &cfg);
                assert_eq!(
                    oracles.server_check_disagreement(&p.source),
                    None,
                    "engine check op diverged from direct check on\n{}",
                    p.source
                );
                // Sanity: damaged modules really are rejected by both.
                assert_eq!(oracles.engine_check_verdict(&p.source), p.well_typed);
            }
        }
    }

    #[test]
    fn freest_budget_retry_decides_within_ten_x() {
        // A pair that exhausts a deliberately tiny base budget must be
        // retried at 10× and decided there.
        use algst_gen::suite::{build_suite, SuiteKind};
        let suite = build_suite(SuiteKind::Equivalent, 12, 77);
        let mut tiny = EquivOracles::new(Sabotage::None, 8);
        let mut saw_retry_decided = false;
        for case in &suite.cases {
            let v = tiny.verdicts(&case.instance.decls, &case.instance.ty, &case.other);
            if v.freest_retried && v.freest.is_some() {
                saw_retry_decided = true;
                assert_eq!(v.freest, Some(case.equivalent));
            }
        }
        assert!(
            saw_retry_decided,
            "a base budget of 8 expansions must exhaust somewhere and recover at 80"
        );
    }

    #[test]
    fn parse_type_smoke_for_server_path() {
        // The server oracle goes through Display; pin one tricky shape.
        let t = Type::forall(
            "s",
            algst_core::kind::Kind::Session,
            Type::arrow(
                Type::output(Type::neg(Type::int()), Type::var("s")),
                Type::var("s"),
            ),
        );
        assert!(algst_syntax::parse_type(&t.to_string()).is_ok());
        type_round_trip(&t).unwrap();
    }
}
