//! The seeded differential-fuzzing driver behind `algst fuzz`.
//!
//! One run is fully determined by `(seed, iters, sabotage)`: every
//! random draw flows from a single `StdRng`. Each iteration exercises
//! the equivalence family; every second iteration additionally runs the
//! program families (syntax round-trip, metamorphic checking); every
//! fourth runs the runtime family; every eighth runs the
//! tenant-isolation family ([`crate::tenants`]); every 32nd
//! re-validates the deep store invariants.
//!
//! A disagreement is delta-debugged ([`crate::reduce`]) against the
//! *specific* oracle pair that split, and written to the failures
//! directory as a replayable `.algst` file whose comment header records
//! the oracle, seed, iteration, sabotage flag and verdicts. Replay the
//! file with `algst fuzz --replay FILE` (add `--sabotage FLAG` to
//! reproduce an injected-bug run).

use crate::oracles::{
    check_metamorphic, program_round_trip, run_program, type_round_trip, EquivOracles,
    MetaTransform, RunOutcome, META_TRANSFORMS,
};
use crate::reduce::{reduce_equiv_case, reduce_program, EquivCase};
use crate::reference::Sabotage;
use crate::tenants::tenant_isolation_disagreement;
use algst_core::kind::Kind;
use algst_core::protocol::Declarations;
use algst_core::types::Type;
use algst_gen::{
    equivalent_variant, generate_instance, generate_program, nonequivalent_mutant, GenConfig,
    ProgConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Parameters of one fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    pub iters: u64,
    pub seed: u64,
    /// Where minimized counterexamples are written.
    pub out_dir: PathBuf,
    /// Injected bug, for self-tests (`--sabotage`).
    pub sabotage: Sabotage,
    /// FreeST bisimulation expansion budget per pair.
    pub freest_budget: u64,
    /// Wall-clock step budget per runtime-oracle program.
    pub run_budget: Duration,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            iters: 200,
            seed: 42,
            out_dir: PathBuf::from("conform-failures"),
            sabotage: Sabotage::None,
            freest_budget: 300_000,
            run_budget: Duration::from_secs(10),
            quiet: false,
        }
    }
}

/// One recorded oracle disagreement.
#[derive(Clone, Debug)]
pub struct Failure {
    /// `family:detail`, e.g. `equiv:store-vs-reference`.
    pub oracle: String,
    pub detail: String,
    /// The replayable counterexample file, if one was written.
    pub file: Option<PathBuf>,
    /// AST nodes of the minimized counterexample (equiv family).
    pub minimized_nodes: Option<usize>,
    pub iter: u64,
}

/// Counters and failures of a completed run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    pub iters: u64,
    pub equiv_cases: u64,
    pub syntax_cases: u64,
    pub check_cases: u64,
    pub runtime_cases: u64,
    /// Generated modules pushed through the server `check` op and
    /// cross-checked against a direct in-process check.
    pub server_check_cases: u64,
    /// Seeded multi-tenant registries checked for cross-tenant verdict,
    /// `TypeId`, and cache leaks ([`crate::tenants`]).
    pub tenant_cases: u64,
    /// Pairs whose FreeST run exhausted the base budget and was retried
    /// once at 10×.
    pub freest_retries: u64,
    /// FreeST verdicts still skipped after the adaptive retry
    /// (budget exhaustion at 10×, or untranslatable instances).
    pub freest_skips: u64,
    /// Runtime runs that hit the step budget (not failures).
    pub budget_hits: u64,
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} iterations: {} equiv pairs ({} freest budget retries, {} still skipped), \
             {} syntax round-trips, {} metamorphic checks, {} server check ops, \
             {} tenant-isolation cases, {} runtime runs ({} budget hits) — {} failure(s)",
            self.iters,
            self.equiv_cases,
            self.freest_retries,
            self.freest_skips,
            self.syntax_cases,
            self.check_cases,
            self.server_check_cases,
            self.tenant_cases,
            self.runtime_cases,
            self.budget_hits,
            self.failures.len()
        )
    }
}

/// Stop recording (and running) after this many failures: a build this
/// broken needs a fix, not more counterexamples.
const MAX_FAILURES: usize = 20;

/// Runs the full differential loop. See the module docs for the
/// per-iteration schedule.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut oracles = EquivOracles::new(cfg.sabotage, cfg.freest_budget);
    let mut report = FuzzReport::default();

    for iter in 0..cfg.iters {
        report.iters = iter + 1;
        if report.failures.len() >= MAX_FAILURES {
            break;
        }
        if !cfg.quiet && iter > 0 && iter % 100 == 0 {
            eprintln!(
                "algst fuzz: {iter}/{} iterations, {}",
                cfg.iters,
                report.summary()
            );
        }

        equiv_iteration(cfg, &mut rng, &mut oracles, iter, &mut report);
        if iter % 2 == 0 {
            program_iteration(cfg, &mut rng, &mut oracles, iter, &mut report);
        }
        if iter % 4 == 0 {
            runtime_iteration(cfg, &mut rng, &mut oracles, iter, &mut report);
        }
        if iter % 8 == 3 {
            tenant_iteration(cfg, &mut rng, iter, &mut report);
        }
        if iter % 32 == 31 {
            if let Err(violation) = oracles.check_store_invariants() {
                report.failures.push(Failure {
                    oracle: "store:invariants".into(),
                    detail: violation,
                    file: None,
                    minimized_nodes: None,
                    iter,
                });
            }
        }
    }
    report
}

// ------------------------------------------------------------ the families

fn equiv_iteration(
    cfg: &FuzzConfig,
    rng: &mut StdRng,
    oracles: &mut EquivOracles,
    iter: u64,
    report: &mut FuzzReport,
) {
    let size = rng.gen_range(4..72);
    let inst = generate_instance(rng, &GenConfig::sized(size));
    let truth = rng.gen_range(0..2) == 0;
    let other = if truth {
        equivalent_variant(rng, &inst.decls, &inst.ty, Kind::Value, 8)
    } else {
        let mutant = nonequivalent_mutant(rng, &inst.ty).expect("generated spines are mutable");
        equivalent_variant(rng, &inst.decls, &mutant, Kind::Value, 5)
    };
    report.equiv_cases += 1;

    let verdicts = oracles.verdicts(&inst.decls, &inst.ty, &other);
    if verdicts.freest_retried {
        report.freest_retries += 1;
    }
    if verdicts.freest.is_none() {
        report.freest_skips += 1;
    }
    if let Some((a, b)) = verdicts.disagreement(Some(truth)) {
        let case = EquivCase {
            decls: inst.decls.clone(),
            lhs: inst.ty.clone(),
            rhs: other.clone(),
        };
        let oracle = format!("equiv:{a}-vs-{b}");
        // Ground truth is a property of the original construction — it
        // cannot be recomputed for reduced candidates. What *can* be
        // preserved is the mismatch itself: on a truth-only split every
        // oracle unanimously returned the wrong verdict, so a candidate
        // still witnesses the bug exactly when all of them still return
        // that original wrong verdict ([`verdict_stable`]).
        let minimized = if b == "ground-truth" {
            let wrong = verdicts.store;
            reduce_equiv_case(&case, 128, &mut |candidate| {
                verdict_stable(oracles, candidate, wrong)
            })
        } else {
            let pair = b.clone();
            reduce_equiv_case(&case, 128, &mut |candidate| {
                oracle_pair_disagrees(oracles, candidate, &pair)
            })
        };
        let final_verdicts = oracles.verdicts(&minimized.decls, &minimized.lhs, &minimized.rhs);
        let detail = format!(
            "{} vs {} — verdicts {:?} (truth {:?})",
            minimized.lhs,
            minimized.rhs,
            final_verdicts,
            if b == "ground-truth" {
                Some(truth)
            } else {
                None
            }
        );
        // Ground-truth mismatches replay against the recorded truth:
        // verdict-stable reduction kept every oracle on the original
        // wrong verdict, so the reduced pair still contradicts it.
        let mut body = String::new();
        if b == "ground-truth" {
            let _ = writeln!(body, "-- truth: {truth}");
        }
        body.push_str(&render_equiv_case(&minimized));
        let file = write_failure(cfg, &oracle, iter, &detail, &body, report);
        report.failures.push(Failure {
            oracle,
            detail,
            file,
            minimized_nodes: Some(minimized.node_count()),
            iter,
        });
    }

    // Syntax family on the same pair: print → parse → resolve identity.
    for ty in [&inst.ty, &other] {
        report.syntax_cases += 1;
        if let Err(detail) = type_round_trip(ty) {
            let minimized = crate::reduce::reduce_type(ty, 64, &mut |candidate| {
                type_round_trip(candidate).is_err()
            });
            let oracle = "syntax:type-round-trip".to_owned();
            // Caveat: the body below is serialized with the very printer
            // under test, so the text may itself reflect the bug (replay
            // treats an unparseable body as a reproduction; a silently
            // *different* reparse is only recoverable from the Debug
            // form recorded in the header).
            let body = format!(
                "-- debug-ast: {minimized:?}\ntype ConformLhs = {minimized}\ntype ConformRhs = {minimized}\n"
            );
            let detail = format!("{detail} (minimized: {minimized})");
            let file = write_failure(cfg, &oracle, iter, &detail, &body, report);
            report.failures.push(Failure {
                oracle,
                detail,
                file,
                minimized_nodes: Some(minimized.node_count()),
                iter,
            });
        }
    }
}

/// The verdict-stability predicate for ground-truth mismatches: a
/// reduction candidate still witnesses the failure iff every oracle
/// still unanimously returns the original wrong verdict. Uses the
/// cheap backends plus the server engine; FreeST is excluded — it is
/// budgeted and often undecided, so consulting it would veto sound
/// reductions (and cost minutes per shrink).
fn verdict_stable(oracles: &mut EquivOracles, case: &EquivCase, wrong: bool) -> bool {
    let v = oracles.fast_verdicts(&case.lhs, &case.rhs);
    v.store == wrong
        && v.shared == wrong
        && v.reference == wrong
        && oracles.server_verdict(&case.lhs, &case.rhs) == wrong
}

/// Re-runs exactly the two oracles that disagreed on a reduction
/// candidate — never the full five-way battery, since the reducer calls
/// this thousands of times.
fn oracle_pair_disagrees(oracles: &mut EquivOracles, case: &EquivCase, pair: &str) -> bool {
    let store = oracles.store_verdict(&case.lhs, &case.rhs);
    match pair {
        "freest" => {
            matches!(oracles.freest_verdict(&case.decls, &case.lhs, &case.rhs),
                     Some(f) if f != store)
        }
        "server" => oracles.server_verdict(&case.lhs, &case.rhs) != store,
        _ => {
            let v = oracles.fast_verdicts(&case.lhs, &case.rhs);
            match pair {
                "shared" => v.shared != store,
                _ => v.reference != store,
            }
        }
    }
}

fn program_iteration(
    cfg: &FuzzConfig,
    rng: &mut StdRng,
    oracles: &mut EquivOracles,
    iter: u64,
    report: &mut FuzzReport,
) {
    let prog_cfg = ProgConfig {
        spine: rng.gen_range(1..7),
        choices: rng.gen_range(0..3),
        poly: rng.gen_range(0..2) == 0,
        damage: rng.gen_range(0..3) == 0,
    };
    let program = generate_program(rng, &prog_cfg);

    // Server check-op family: the module through the engine's
    // check/module-cache path vs a direct in-process check. Covers both
    // well-typed and damaged modules (`prog_cfg.damage`).
    report.server_check_cases += 1;
    if let Some(detail) = oracles.server_check_disagreement(&program.source) {
        let minimized = reduce_program(&program.source, 16, &mut |candidate| {
            oracles.server_check_disagreement(candidate).is_some()
        });
        let oracle = "server-check:engine-vs-direct".to_owned();
        let file = write_failure(cfg, &oracle, iter, &detail, &minimized, report);
        report.failures.push(Failure {
            oracle,
            detail,
            file,
            minimized_nodes: None,
            iter,
        });
    }

    report.syntax_cases += 1;
    if let Err(detail) = program_round_trip(&program.source) {
        let minimized = reduce_program(&program.source, 16, &mut |candidate| {
            program_round_trip(candidate).is_err()
        });
        let oracle = "syntax:program-round-trip".to_owned();
        let file = write_failure(cfg, &oracle, iter, &detail, &minimized, report);
        report.failures.push(Failure {
            oracle,
            detail,
            file,
            minimized_nodes: None,
            iter,
        });
    }

    for transform in META_TRANSFORMS {
        report.check_cases += 1;
        if let Err(detail) =
            check_metamorphic(oracles.checker_session(), &program.source, transform)
        {
            let minimized = reduce_program(&program.source, 16, &mut |candidate| {
                check_metamorphic(oracles.checker_session(), candidate, transform).is_err()
            });
            let oracle = format!("check:{}", transform_flag(transform));
            let file = write_failure(cfg, &oracle, iter, &detail, &minimized, report);
            report.failures.push(Failure {
                oracle,
                detail,
                file,
                minimized_nodes: None,
                iter,
            });
        }
    }
}

/// The tenant-isolation family: one seeded case per eighth iteration.
/// The case seed is drawn from the run's root RNG and recorded in the
/// counterexample header, so replay re-runs the exact case with no
/// other state. Structural isolation breaches have no smaller witness
/// to reduce toward — the case *is* the registry interaction — so
/// failures are written as-is.
fn tenant_iteration(cfg: &FuzzConfig, rng: &mut StdRng, iter: u64, report: &mut FuzzReport) {
    report.tenant_cases += 1;
    let case_seed = rng.gen::<u64>();
    if let Some(detail) = tenant_isolation_disagreement(case_seed) {
        let oracle = "tenant-isolation:registry".to_owned();
        let body = format!("-- case-seed: {case_seed}\n");
        let file = write_failure(cfg, &oracle, iter, &detail, &body, report);
        report.failures.push(Failure {
            oracle,
            detail,
            file,
            minimized_nodes: None,
            iter,
        });
    }
}

fn runtime_iteration(
    cfg: &FuzzConfig,
    rng: &mut StdRng,
    oracles: &mut EquivOracles,
    iter: u64,
    report: &mut FuzzReport,
) {
    let prog_cfg = ProgConfig {
        spine: rng.gen_range(1..7),
        choices: rng.gen_range(0..3),
        poly: rng.gen_range(0..2) == 0,
        damage: false,
    };
    let program = generate_program(rng, &prog_cfg);
    report.runtime_cases += 1;
    match run_program(oracles.checker_session(), &program, cfg.run_budget) {
        RunOutcome::Ok => {}
        RunOutcome::Budget => report.budget_hits += 1,
        RunOutcome::Failed(detail) => {
            // The expectation is recomputed from each candidate's own
            // client body (`expected_output_of`), so runtime
            // counterexamples shrink like every other oracle. A
            // candidate "still fails" only when it keeps the generated
            // shape, still type checks, and still runs to the wrong
            // output — budget blowups and self-inflicted type errors
            // from dropped declarations do not count.
            let minimized = reduce_program(&program.source, 16, &mut |candidate| {
                let Some(expected_output) = algst_gen::expected_output_of(candidate) else {
                    return false;
                };
                let candidate = algst_gen::GenProgram {
                    source: candidate.to_owned(),
                    well_typed: true,
                    expected_output,
                    entry: program.entry,
                };
                matches!(
                    run_program(oracles.checker_session(), &candidate, cfg.run_budget),
                    RunOutcome::Failed(d) if !d.starts_with("well-typed program rejected")
                )
            });
            let oracle = "runtime:run".to_owned();
            let file = write_failure(cfg, &oracle, iter, &detail, &minimized, report);
            report.failures.push(Failure {
                oracle,
                detail,
                file,
                minimized_nodes: None,
                iter,
            });
        }
    }
}

fn transform_flag(t: MetaTransform) -> &'static str {
    match t {
        MetaTransform::AlphaRename => "alpha-rename",
        MetaTransform::DoubleNegPayloads => "double-neg",
        MetaTransform::DualOfDual => "dual-of-dual",
    }
}

// ------------------------------------------------------------ failure files

/// Renders a reduced equivalence case as a replayable program: the
/// protocol declarations plus two `type` aliases naming the pair.
fn render_equiv_case(case: &EquivCase) -> String {
    let mut out = String::new();
    for p in case.decls.protocols() {
        let _ = write!(out, "protocol {}", p.name);
        for (i, c) in p.ctors.iter().enumerate() {
            let _ = write!(out, "{} {}", if i == 0 { " =" } else { " |" }, c.tag);
            for arg in &c.args {
                let _ = write!(out, " {}", atom_source(arg));
            }
        }
        out.push('\n');
    }
    let _ = writeln!(out, "type ConformLhs = {}", case.lhs);
    let _ = writeln!(out, "type ConformRhs = {}", case.rhs);
    out
}

/// Renders a core type for an *atom* position (constructor argument):
/// self-delimiting forms stay bare, everything else is parenthesized.
fn atom_source(t: &Type) -> String {
    match t {
        Type::Unit | Type::Base(_) | Type::Var(_) | Type::EndIn | Type::EndOut | Type::Pair(..) => {
            t.to_string()
        }
        Type::Proto(_, args) | Type::Data(_, args) if args.is_empty() => t.to_string(),
        _ => format!("({t})"),
    }
}

fn write_failure(
    cfg: &FuzzConfig,
    oracle: &str,
    iter: u64,
    detail: &str,
    body: &str,
    report: &FuzzReport,
) -> Option<PathBuf> {
    if std::fs::create_dir_all(&cfg.out_dir).is_err() {
        return None;
    }
    let slug: String = oracle
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    // The running failure count disambiguates multiple failures of the
    // same oracle within one iteration (no silent overwrites).
    let path = cfg.out_dir.join(format!(
        "case-{}-{slug}-i{iter}-n{}.algst",
        cfg.seed,
        report.failures.len()
    ));
    let mut text = String::new();
    let _ = writeln!(
        text,
        "-- algst-conform counterexample (replay: algst fuzz --replay {})",
        path.display()
    );
    let _ = writeln!(text, "-- oracle: {oracle}");
    let _ = writeln!(text, "-- sabotage: {}", cfg.sabotage.flag());
    let _ = writeln!(text, "-- seed: {} iter: {iter}", cfg.seed);
    for line in detail.lines().take(4) {
        let _ = writeln!(text, "-- detail: {line}");
    }
    let _ = writeln!(text, "-- failures-so-far: {}", report.failures.len());
    text.push_str(body);
    std::fs::write(&path, text).ok()?;
    Some(path)
}

// ------------------------------------------------------------------ replay

/// Outcome of replaying a counterexample file.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    pub oracle: String,
    /// True when the failure reproduced.
    pub reproduced: bool,
    pub detail: String,
}

/// Replays a `conform-failures/` file: re-runs the oracle named in its
/// header on its body. For `equiv:*` files the body's `ConformLhs` /
/// `ConformRhs` aliases are the compared pair; for program families the
/// body is the module itself. Runtime replays re-check termination and
/// error-freedom (the original expected output is not recorded).
pub fn replay_file(path: &Path, sabotage: Sabotage) -> Result<ReplayOutcome, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let oracle = text
        .lines()
        .find_map(|l| l.strip_prefix("-- oracle: "))
        .ok_or("missing `-- oracle:` header")?
        .trim()
        .to_owned();

    if let Some(pair) = oracle.strip_prefix("equiv:") {
        let (decls, lhs, rhs) = parse_equiv_body(&text)?;
        // Ground-truth mismatches replay against the recorded truth.
        let truth = text
            .lines()
            .find_map(|l| l.strip_prefix("-- truth: "))
            .and_then(|v| v.trim().parse::<bool>().ok());
        let mut oracles = EquivOracles::new(sabotage, 2_000_000);
        let verdicts = oracles.verdicts(&decls, &lhs, &rhs);
        let disagreement = verdicts.disagreement(truth);
        Ok(ReplayOutcome {
            oracle: oracle.clone(),
            reproduced: disagreement.is_some(),
            detail: format!("{pair}: {lhs} vs {rhs} — {verdicts:?} (truth {truth:?})"),
        })
    } else if oracle == "syntax:type-round-trip" {
        // The body was serialized with the printer under test. A body
        // that no longer parses *is* the printer bug reproducing; a body
        // that parses to a different type than recorded can only be
        // detected through the round-trip re-check below.
        let (_, lhs, _) = match parse_equiv_body(&text) {
            Ok(parsed) => parsed,
            Err(e) => {
                return Ok(ReplayOutcome {
                    oracle,
                    reproduced: true,
                    detail: format!("counterexample body does not parse (printer bug): {e}"),
                })
            }
        };
        let result = type_round_trip(&lhs);
        Ok(ReplayOutcome {
            oracle,
            reproduced: result.is_err(),
            detail: result.err().unwrap_or_else(|| {
                "round-trips cleanly (if the original bug reparsed silently differently, \
                 compare against the file's -- debug-ast header)"
                    .into()
            }),
        })
    } else if oracle == "syntax:program-round-trip" {
        let result = program_round_trip(&text);
        Ok(ReplayOutcome {
            oracle,
            reproduced: result.is_err(),
            detail: result.err().unwrap_or_else(|| "round-trips cleanly".into()),
        })
    } else if oracle == "server-check:engine-vs-direct" {
        let mut oracles = EquivOracles::new(sabotage, 2_000_000);
        let disagreement = oracles.server_check_disagreement(&text);
        Ok(ReplayOutcome {
            oracle,
            reproduced: disagreement.is_some(),
            detail: disagreement.unwrap_or_else(|| "engine and direct check agree".into()),
        })
    } else if let Some(flag) = oracle.strip_prefix("check:") {
        let transform = META_TRANSFORMS
            .into_iter()
            .find(|t| transform_flag(*t) == flag)
            .ok_or_else(|| format!("unknown transform {flag}"))?;
        let result = check_metamorphic(&mut algst_core::Session::new(), &text, transform);
        Ok(ReplayOutcome {
            oracle,
            reproduced: result.is_err(),
            detail: result.err().unwrap_or_else(|| "verdict preserved".into()),
        })
    } else if oracle.starts_with("tenant-isolation") {
        // The whole case is a function of its recorded seed; sabotage
        // does not apply (no reference oracle is involved).
        let case_seed = text
            .lines()
            .find_map(|l| l.strip_prefix("-- case-seed: "))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .ok_or("missing `-- case-seed:` header")?;
        let detail = tenant_isolation_disagreement(case_seed);
        Ok(ReplayOutcome {
            oracle,
            reproduced: detail.is_some(),
            detail: detail.unwrap_or_else(|| "tenant isolation holds".into()),
        })
    } else if oracle == "runtime:run" {
        let program = algst_gen::GenProgram {
            source: text,
            well_typed: true,
            expected_output: Vec::new(),
            entry: "main",
        };
        let outcome = run_program(
            &mut algst_core::Session::new(),
            &program,
            Duration::from_secs(10),
        );
        let reproduced = matches!(
            &outcome,
            RunOutcome::Failed(d) if !d.starts_with("output mismatch")
        );
        Ok(ReplayOutcome {
            oracle,
            reproduced,
            detail: format!("{outcome:?} (output not compared on replay)"),
        })
    } else {
        Err(format!("unknown oracle {oracle}"))
    }
}

/// Extracts the protocol declarations and the `ConformLhs`/`ConformRhs`
/// aliases from a replay body, resolving surface types nominally.
fn parse_equiv_body(text: &str) -> Result<(Declarations, Type, Type), String> {
    use algst_syntax::ast::Decl;
    let ast = algst_syntax::parse_program(text).map_err(|e| e.to_string())?;
    let mut decls = Declarations::new();
    let (mut lhs, mut rhs) = (None, None);
    for d in &ast.decls {
        match d {
            Decl::Protocol(td) => {
                let ctors = td
                    .ctors
                    .iter()
                    .map(|c| {
                        let args = c
                            .args
                            .iter()
                            .map(resolve_stype)
                            .collect::<Result<Vec<_>, _>>()?;
                        Ok(algst_core::protocol::Ctor { tag: c.name, args })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                decls
                    .add_protocol(algst_core::protocol::ProtocolDecl {
                        name: td.name,
                        params: td.params.clone(),
                        ctors,
                    })
                    .map_err(|e| e.to_string())?;
            }
            Decl::Alias(a) if a.name.as_str() == "ConformLhs" => {
                lhs = Some(resolve_stype(&a.body)?);
            }
            Decl::Alias(a) if a.name.as_str() == "ConformRhs" => {
                rhs = Some(resolve_stype(&a.body)?);
            }
            _ => {}
        }
    }
    match (lhs, rhs) {
        (Some(l), Some(r)) => Ok((decls, l, r)),
        _ => Err("replay body needs `type ConformLhs = …` and `type ConformRhs = …`".into()),
    }
}

fn resolve_stype(st: &algst_syntax::ast::SType) -> Result<Type, String> {
    algst_server::resolve::type_from_str(&algst_syntax::printer::type_to_source(st))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("algst-conform-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn clean_run_finds_no_disagreements() {
        let cfg = FuzzConfig {
            iters: 40,
            seed: 7,
            out_dir: temp_dir("clean"),
            quiet: true,
            freest_budget: 200_000,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        assert!(
            report.clean(),
            "clean configuration produced failures: {:#?}",
            report.failures
        );
        assert!(report.equiv_cases >= 40);
        assert!(report.check_cases > 0 && report.runtime_cases > 0);
        assert!(
            report.server_check_cases >= 20,
            "the server check-op family must run on every program iteration"
        );
        assert!(
            report.tenant_cases >= 5,
            "the tenant-isolation family must run on every eighth iteration"
        );
        // Adaptive budget: whatever was retried is accounted; skips can
        // only be pairs that still failed at 10× or are untranslatable.
        assert!(report.freest_skips <= report.equiv_cases);
        let summary = report.summary();
        assert!(summary.contains("server check ops"), "{summary}");
        assert!(summary.contains("budget retries"), "{summary}");
        assert!(summary.contains("tenant-isolation cases"), "{summary}");
    }

    #[test]
    fn verdict_stability_reduces_ground_truth_style_mismatches() {
        // A ground-truth mismatch presents as every oracle unanimously
        // returning the same (wrong) verdict. Simulate one: take a
        // generated pair, call whatever the oracles unanimously say the
        // "wrong" verdict, and reduce under verdict stability — the
        // predicate the fuzz loop now uses instead of writing the case
        // unreduced.
        let mut rng = StdRng::seed_from_u64(13);
        let mut oracles = EquivOracles::new(Sabotage::None, 100_000);
        let inst = generate_instance(&mut rng, &GenConfig::sized(48));
        let other = equivalent_variant(&mut rng, &inst.decls, &inst.ty, Kind::Value, 8);
        let case = EquivCase {
            decls: inst.decls.clone(),
            lhs: inst.ty.clone(),
            rhs: other,
        };
        let wrong = oracles.fast_verdicts(&case.lhs, &case.rhs).store;
        let minimized = reduce_equiv_case(&case, 128, &mut |candidate| {
            verdict_stable(&mut oracles, candidate, wrong)
        });
        assert!(
            verdict_stable(&mut oracles, &minimized, wrong),
            "reduction must preserve the unanimous wrong verdict"
        );
        assert!(
            minimized.node_count() < 15,
            "verdict-stable reduction must actually shrink: {} nodes ({} vs {})",
            minimized.node_count(),
            minimized.lhs,
            minimized.rhs
        );
    }

    #[test]
    fn sabotage_produces_minimized_replayable_counterexamples() {
        let out_dir = temp_dir("sabotage");
        let cfg = FuzzConfig {
            iters: 120,
            seed: 11,
            out_dir: out_dir.clone(),
            sabotage: Sabotage::ReferenceDual,
            quiet: true,
            freest_budget: 100_000,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        let equiv_failure = report
            .failures
            .iter()
            .find(|f| f.oracle == "equiv:store-vs-reference")
            .expect("sabotaged reference must disagree somewhere");
        let nodes = equiv_failure
            .minimized_nodes
            .expect("equiv failures are reduced");
        assert!(
            nodes < 15,
            "counterexample not minimized: {nodes} nodes ({})",
            equiv_failure.detail
        );
        let file = equiv_failure.file.as_ref().expect("failure file written");
        // Replaying under the same sabotage reproduces the disagreement…
        let replay = replay_file(file, Sabotage::ReferenceDual).expect("replayable");
        assert!(
            replay.reproduced,
            "replay did not reproduce: {}",
            replay.detail
        );
        // …and the fixed (unsabotaged) oracle set is clean on it.
        let fixed = replay_file(file, Sabotage::None).expect("replayable");
        assert!(
            !fixed.reproduced,
            "clean oracles disagree: {}",
            fixed.detail
        );
    }
}
