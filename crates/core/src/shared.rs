//! An **epoch-snapshot concurrent type store**: the multi-threaded lift
//! of [`crate::store`], with a lock-free warm path.
//!
//! The single-threaded [`TypeStore`] makes equivalence O(1) amortized,
//! but each thread used to pay its own cold interning and normalization.
//! This module shares that warm state across threads without making any
//! warm read take a lock or an atomic read-modify-write:
//!
//! * [`SharedStore`] — the process-wide source of truth. It owns
//!   - a **lock-free append-only arena** (the id space): a spine of
//!     doubling segments whose slots are written exactly once, so a
//!     reader resolves any published [`TypeId`] with plain acquire
//!     loads;
//!   - an **immutable, generation-stamped `Snapshot`** of the
//!     hash-consing map and the `nrm⁺`/`nrm⁻` memo tables. A snapshot is
//!     a small stack of frozen `Arc<HashMap>` layers (LSM-style), never
//!     mutated after install; and
//!   - a single **writer mutex** guarding the pending (not yet
//!     installed) delta and the arena tail. Only cold interning and
//!     delta publication ever touch it.
//! * [`WorkerStore`] — a per-thread handle: a cached `Arc` of some
//!   recent snapshot plus a **local mirror** (a plain [`TypeStore`]
//!   whose arena is always a prefix-consistent copy of the shared one).
//!   Warm lookups hit the mirror or the cached snapshot; freshly
//!   computed memo entries accumulate in private deltas merged on
//!   [`WorkerStore::publish`] (automatic at a size threshold and on
//!   drop), which installs a new generation every other worker can then
//!   read without locks.
//!
//! ## The warm path takes zero locks
//!
//! A warm read — id lookup, `nrm` memo hit, intern hit on an existing
//! node — is, in order: a local-mirror probe (thread-private), then a
//! probe of the cached snapshot's layers (immutable, lock-free). On a
//! snapshot miss the worker compares one atomic **generation counter**
//! (an acquire *load*, not an RMW) against its cached snapshot; only
//! when the store has actually moved does it refresh through the
//! snapshot lock, and only a genuine cold miss enters the writer mutex.
//! The always-on [`StoreStats::lock_acquisitions`] counter records every
//! lock taken, so "warm replay acquires zero locks" is a testable
//! invariant, not a hope (see `tests/snapshot_stress.rs`).
//!
//! ## Publication protocol
//!
//! Writers never mutate shared state in place:
//!
//! 1. **Cold intern** (`intern_slow`): take the writer mutex, re-read
//!    the current snapshot (its generation is frozen while the mutex is
//!    held, because installs require the same mutex), re-check the
//!    snapshot *and* the pending delta for a racing intern of the same
//!    node, and only then append to the arena and record the node in the
//!    pending delta. This re-check-under-lock is what makes arena ids
//!    unique and globally agreed.
//! 2. **Memo publication** (`publish_deltas`): take the writer mutex,
//!    fold the worker's `nrm±` deltas into the pending delta, and
//!    **install**: build a new `Snapshot` by pushing the pending delta
//!    as a fresh layer (merging top layers while a layer is at least
//!    half its elder's size, so lookup depth stays O(log n) and inserts
//!    amortize to O(1)), swap it into place, then bump the generation
//!    counter. Snapshots are immutable after install: an entry present
//!    in generation g is present, with the same value, in every
//!    generation ≥ g. Workers may install early (without an explicit
//!    publish) once the pending delta exceeds a small threshold, so cold
//!    interns become visible to siblings promptly.
//!
//! Memo values can race benignly: `nrm` is deterministic and ids are
//! global, so two workers computing `nrm(id)` independently record the
//! *same* entry; installs overwrite equals with equals.
//!
//! ## Memory ordering invariants
//!
//! * Arena slots are `OnceLock`s: the writer's `set` (release) pairs
//!   with every reader's `get` (acquire), so a reader that can name an
//!   id sees its node fully initialized. Ids only travel between
//!   threads through synchronizing edges (a snapshot install, the writer
//!   mutex, a channel send), each of which happens-after the slot write
//!   on the writer thread.
//! * The arena's `committed` length is released by the writer after the
//!   slot write and acquired by [`SharedStore::len`]; a length you
//!   observe is a prefix you can read.
//! * The generation counter is stored with release ordering *after* the
//!   new snapshot is swapped in, and probed with acquire ordering; a
//!   worker that observes generation g through the probe will find a
//!   snapshot with generation ≥ g when it refreshes.
//!
//! ## Id agreement
//!
//! All workers of one [`SharedStore`] agree on ids: a node is appended
//! to the arena exactly once (under the writer mutex, after the
//! re-check), and a worker copies shared nodes into its mirror *in
//! arena order*, so the mirror's hash-consing assigns every node the
//! same index it has globally. Children always precede parents in an
//! append-only arena, so syncing a prefix keeps the mirror closed under
//! sub-ids.
//!
//! The id-level algorithms themselves (`intern`, `nrm⁺`/`nrm⁻`,
//! substitution, β-instantiation) are the *same code* as the
//! single-threaded store — both implement [`StoreOps`] — so verdicts
//! cannot drift between the two.
//!
//! ## Compaction: epochs and the remap/install protocol
//!
//! The arena and the snapshot layers are append-only, so a long-lived
//! store grows without bound under diverse traffic.
//! [`SharedStore::compact`] bounds it. A compaction runs entirely
//! behind the writer mutex and **never blocks warm readers**:
//!
//! 1. **Flush**: install the pending delta, so the snapshot is the
//!    complete truth.
//! 2. **Mark**: compute the live set — every id reachable from the
//!    caller's retained `roots` through node children, plus (to keep
//!    warm state warm) the memoized `nrm⁺`/`nrm⁻` values of live ids,
//!    transitively to a fixpoint.
//! 3. **Rebuild**: copy live nodes into a *fresh* arena in old-index
//!    order — children precede parents in an append-only arena, so
//!    every child is remapped before its parent needs it, and the new
//!    arena is again topological. Rebuild a single-layer intern map
//!    and remapped `nrm±` tables (an entry survives iff its key and
//!    value are both live).
//! 4. **Install**: publish the rebuilt state as a new `Snapshot`
//!    with `generation + 1` and **`epoch + 1`**. The generation
//!    counter stays monotone across compactions, so the lock-free
//!    staleness probe keeps working unchanged.
//!
//! Ids are only meaningful *within* an epoch. Every snapshot owns an
//! `Arc` of its epoch's arena, and a worker pins the epoch it attached
//! to: its cached snapshot (and therefore its arena) stays alive and
//! self-consistent no matter how many compactions happen underneath.
//! A worker that discovers the store has moved to a newer epoch marks
//! itself **stale** instead of adopting mixed-epoch state: stale
//! workers keep answering correctly from their pinned snapshot, intern
//! cold nodes privately into their local mirror (never published), and
//! have their memo deltas dropped by the epoch check in
//! `publish_deltas` / `intern_slow`. Staleness ends at an explicit
//! [`WorkerStore::repin`] — a deliberate boundary (the serving engine
//! calls it between request batches) where the worker adopts the
//! newest epoch, resets its mirror, and the caller drops any
//! id-keyed caches (using the remap table [`CompactionOutcome`]
//! hands back, or by recomputing).
//!
//! Because the live set closes over memo values, a compaction retains
//! the warm working set: a fully-warm replay against a compacted
//! store still takes **zero** locks (see `tests/concurrent_store.rs`).

use crate::store::{StoreOps, TNode, TypeId, TypeStore};
use crate::symbol::Symbol;
use crate::types::Type;
use algst_obs::{Field, Histogram, Level, Span, TraceSink};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Delta size at which a worker auto-publishes its memo entries.
const PUBLISH_THRESHOLD: usize = 1024;

/// Pending (uninstalled) writer-side entries at which a cold intern
/// installs a snapshot on its own, so fresh nodes reach siblings even
/// between explicit publishes.
const INSTALL_THRESHOLD: usize = 64;

/// log2 of the first arena segment's slot count.
const SEG0_BITS: u32 = 10;

/// Number of doubling segments: 2^10 + 2^11 + … covers the whole
/// `u32` id space with room to spare.
const SPINE: usize = 22;

// ------------------------------------------------------------- arena

/// Lock-free append-only node arena. Slots are written exactly once
/// (before their index is ever published) and segments double in size,
/// so a slot's address never moves and readers need no lock.
struct Arena {
    spine: [OnceLock<Box<[OnceLock<TNode>]>>; SPINE],
    /// Slots fully initialized. Written (release) only under the
    /// writer mutex; read (acquire) by anyone.
    committed: AtomicUsize,
}

impl Arena {
    fn new() -> Arena {
        Arena {
            spine: [const { OnceLock::new() }; SPINE],
            committed: AtomicUsize::new(0),
        }
    }

    /// Maps a flat index to (segment, offset). Segment k holds
    /// 2^(10+k) slots, so `i + 2^10` lands in the segment named by its
    /// highest set bit.
    fn locate(i: usize) -> (usize, usize) {
        let j = i + (1 << SEG0_BITS);
        let seg = (usize::BITS - 1 - j.leading_zeros() - SEG0_BITS) as usize;
        let off = j - (1usize << (seg as u32 + SEG0_BITS));
        (seg, off)
    }

    fn len(&self) -> usize {
        self.committed.load(Ordering::Acquire)
    }

    /// Reads a committed slot. Lock-free: two acquire loads (segment
    /// pointer, slot).
    fn get(&self, i: usize) -> &TNode {
        let (seg, off) = Self::locate(i);
        self.spine[seg]
            .get()
            .expect("arena segment missing for committed id")[off]
            .get()
            .expect("arena slot missing for committed id")
    }

    /// Appends a node. Caller must hold the writer mutex (single
    /// writer at a time).
    fn push(&self, node: TNode) -> usize {
        let i = self.committed.load(Ordering::Relaxed);
        let (seg, off) = Self::locate(i);
        let segment = self.spine[seg].get_or_init(|| {
            (0..(1usize << (seg as u32 + SEG0_BITS)))
                .map(|_| OnceLock::new())
                .collect()
        });
        if segment[off].set(node).is_err() {
            unreachable!("arena slot {i} written twice");
        }
        self.committed.store(i + 1, Ordering::Release);
        i
    }
}

// ------------------------------------------------------------ layers

/// A frozen stack of hash-map layers, newest last. Lookups scan
/// newest→oldest; pushing a delta merges top layers while one is at
/// least half its elder's size (LSM-style), keeping depth O(log n).
struct Layers<K, V> {
    layers: Vec<Arc<HashMap<K, V>>>,
}

impl<K, V> Clone for Layers<K, V> {
    fn clone(&self) -> Layers<K, V> {
        Layers {
            layers: self.layers.clone(),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Copy> Layers<K, V> {
    fn new() -> Layers<K, V> {
        Layers { layers: Vec::new() }
    }

    fn get(&self, k: &K) -> Option<V> {
        self.layers.iter().rev().find_map(|m| m.get(k).copied())
    }

    fn len(&self) -> usize {
        self.layers.iter().map(|m| m.len()).sum()
    }

    /// A new stack with `delta` as the top layer, compacted.
    fn with_delta(&self, delta: HashMap<K, V>) -> Layers<K, V> {
        if delta.is_empty() {
            return self.clone();
        }
        let mut layers = self.layers.clone();
        layers.push(Arc::new(delta));
        while layers.len() >= 2 {
            let top = layers[layers.len() - 1].len();
            let below = layers[layers.len() - 2].len();
            if top * 2 < below {
                break;
            }
            let top = layers.pop().unwrap();
            let below = layers.pop().unwrap();
            // `below` may still be shared with older snapshots, so merge
            // into a copy; newer entries win (they are equal anyway).
            let mut merged = HashMap::clone(&below);
            merged.extend(top.iter().map(|(k, v)| (k.clone(), *v)));
            layers.push(Arc::new(merged));
        }
        Layers { layers }
    }
}

// ------------------------------------------------------- accounting

/// Estimated heap footprint of one arena node (shallow struct plus the
/// child vectors of `Proto`/`Data`). An estimate, not an allocator
/// census — it only has to be monotone in real usage so the bounded-
/// memory policy has a stable trigger.
fn node_bytes(node: &TNode) -> u64 {
    let heap = match node {
        TNode::Proto(_, args) | TNode::Data(_, args) => args.len() * std::mem::size_of::<TypeId>(),
        _ => 0,
    };
    (std::mem::size_of::<TNode>() + heap) as u64
}

/// Estimated per-entry cost of the snapshot hash maps (key + value +
/// table bookkeeping).
const MAP_ENTRY_OVERHEAD: u64 = 16;

// ---------------------------------------------------------- snapshot

/// One immutable, generation-stamped view of the arena and the intern
/// and memo tables. Never mutated after install. Within one epoch the
/// prefix property holds: every entry of generation g is present
/// unchanged in all generations ≥ g of the same epoch. A compaction
/// starts a new epoch with a fresh arena and rebuilt tables.
struct Snapshot {
    generation: u64,
    /// Compaction epoch. Ids are only meaningful within an epoch; all
    /// snapshots of one epoch share one arena `Arc`.
    epoch: u64,
    /// Arena length at install time; every id in the tables is below it.
    nodes_len: usize,
    /// This epoch's id space. Kept alive by every worker pinned to the
    /// epoch, so compaction never invalidates an id under a reader.
    arena: Arc<Arena>,
    intern: Layers<TNode, TypeId>,
    pos: Layers<TypeId, TypeId>,
    neg: Layers<TypeId, TypeId>,
}

impl Snapshot {
    fn empty() -> Snapshot {
        Snapshot {
            generation: 0,
            epoch: 0,
            nodes_len: 0,
            arena: Arc::new(Arena::new()),
            intern: Layers::new(),
            pos: Layers::new(),
            neg: Layers::new(),
        }
    }

    /// Estimated heap footprint of the snapshot's map layers.
    fn table_bytes(&self) -> u64 {
        let node = std::mem::size_of::<TNode>() as u64;
        let id = std::mem::size_of::<TypeId>() as u64;
        let intern = self.intern.len() as u64 * (node + id + MAP_ENTRY_OVERHEAD);
        let memo = (self.pos.len() + self.neg.len()) as u64 * (2 * id + MAP_ENTRY_OVERHEAD);
        intern + memo
    }
}

/// Writer-side entries not yet installed into a snapshot. Guarded by
/// the writer mutex.
#[derive(Default)]
struct Pending {
    intern: HashMap<TNode, TypeId>,
    pos: HashMap<TypeId, TypeId>,
    neg: HashMap<TypeId, TypeId>,
}

impl Pending {
    fn len(&self) -> usize {
        self.intern.len() + self.pos.len() + self.neg.len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ------------------------------------------------------------- stats

#[derive(Default)]
struct Counters {
    /// `nrm` memo hits answered from a worker's local mirror.
    nrm_local_hits: AtomicU64,
    /// `nrm` memo hits answered by a snapshot layer (then cached locally).
    nrm_snapshot_hits: AtomicU64,
    /// `nrm` memo misses (a normal form actually computed).
    nrm_misses: AtomicU64,
    /// Times a worker published non-empty deltas.
    publishes: AtomicU64,
    /// Workers ever attached.
    workers: AtomicU64,
    /// Snapshot generations installed.
    installs: AtomicU64,
    /// Cold interns that entered the writer mutex.
    slow_path: AtomicU64,
    /// Every lock acquisition on the store (writer mutex + snapshot
    /// RwLock, reads and writes). Zero across a warm replay.
    lock_acquisitions: AtomicU64,
    /// Completed [`SharedStore::compact`] passes.
    compactions: AtomicU64,
    /// Total estimated bytes reclaimed by compactions.
    reclaimed_bytes: AtomicU64,
}

/// Lock-free mirrors of the current snapshot's sizes, so `stats()` and
/// the bounded-memory policy check ([`SharedStore::live_bytes`]) never
/// touch a lock. Written only under the writer mutex (at arena pushes,
/// installs, and compactions); read with relaxed loads by anyone.
#[derive(Default)]
struct Sizes {
    /// Live nodes in the current epoch's arena.
    nodes: AtomicUsize,
    /// Estimated bytes of those nodes.
    arena_bytes: AtomicU64,
    /// Estimated bytes of the current snapshot's map layers.
    snapshot_bytes: AtomicU64,
    /// Entries across the current snapshot's intern layers.
    intern_entries: AtomicU64,
    /// Entries across the current snapshot's `nrm⁺` + `nrm⁻` layers.
    memo_entries: AtomicU64,
}

/// A point-in-time snapshot of store-wide statistics, for the server's
/// `stats` op and `--stats-on-exit`. Worker-side counters are folded in
/// on every publish, so numbers trail the live state by at most one
/// unpublished delta per worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct hash-consed nodes in the current epoch's arena.
    pub nodes: u64,
    /// Estimated bytes held by the arena's live nodes.
    pub arena_bytes: u64,
    /// Estimated bytes held by the current snapshot's map layers.
    pub snapshot_bytes: u64,
    /// Entries across the current snapshot's intern layers.
    pub intern_entries: u64,
    /// Entries across the current snapshot's `nrm⁺` + `nrm⁻` layers.
    pub memo_entries: u64,
    /// Compaction epoch (0 = never compacted).
    pub epoch: u64,
    /// Completed compaction passes.
    pub compactions: u64,
    /// Total estimated bytes reclaimed by compactions.
    pub reclaimed_bytes: u64,
    /// `nrm⁺`/`nrm⁻` memo hits (local mirror + snapshot layers).
    pub nrm_hits: u64,
    /// Of those, hits that had to read a snapshot layer.
    pub nrm_shared_hits: u64,
    /// `nrm⁺`/`nrm⁻` computations that found no memo entry.
    pub nrm_misses: u64,
    /// Non-empty delta publications by workers.
    pub publishes: u64,
    /// Workers ever attached to this store.
    pub workers: u64,
    /// Current snapshot generation (0 = nothing installed yet).
    pub generation: u64,
    /// Snapshot generations installed (publishes + threshold installs).
    pub snapshot_installs: u64,
    /// Cold interns that took the writer mutex.
    pub slow_path: u64,
    /// Total lock acquisitions on the shared store. A fully-warm
    /// replay adds exactly zero (see `tests/snapshot_stress.rs`).
    pub lock_acquisitions: u64,
}

impl StoreStats {
    /// Estimated live bytes of the store: arena nodes plus snapshot
    /// map layers. The quantity the `--max-store-bytes` policy bounds.
    pub fn live_bytes(&self) -> u64 {
        self.arena_bytes + self.snapshot_bytes
    }

    /// Fraction of `nrm` queries answered from a memo, in `[0, 1]`.
    pub fn nrm_hit_rate(&self) -> f64 {
        let total = self.nrm_hits + self.nrm_misses;
        if total == 0 {
            return 0.0;
        }
        self.nrm_hits as f64 / total as f64
    }
}

// ------------------------------------------------------- SharedStore

/// Observability hooks a store owner (typically the serving engine) may
/// install with [`SharedStore::install_obs`].
///
/// The hooks live entirely on the store's **cold** paths — the interning
/// slow path and snapshot installs, both of which already take the
/// writer mutex and run at microsecond scale — so installing them does
/// not add a single instruction to warm lock-free reads.
#[derive(Debug)]
pub struct StoreObs {
    /// Latency histogram for [`intern`](StoreOps) slow-path entries
    /// (mutex + re-probe + arena append, possibly an install).
    pub slow_path_ns: Arc<Histogram>,
    /// Latency histogram for snapshot installs (delta fold + pointer
    /// swap).
    pub install_ns: Arc<Histogram>,
    /// Event sink; receives a `snapshot_install` event (at
    /// [`Level::Debug`]) for every new generation.
    pub sink: Arc<TraceSink>,
}

/// What one [`SharedStore::compact`] pass did. The remap table is the
/// caller's bridge from the old epoch to the new: every retained root
/// (and everything live through it) appears as a key.
#[derive(Debug)]
pub struct CompactionOutcome {
    /// The new epoch installed by this pass.
    pub epoch: u64,
    /// Arena nodes before / after the pass.
    pub nodes_before: usize,
    pub nodes_after: usize,
    /// Estimated live bytes before / after the pass.
    pub bytes_before: u64,
    pub bytes_after: u64,
    /// Old-epoch id → new-epoch id, for every live id.
    pub remap: HashMap<TypeId, TypeId>,
}

/// The process-wide arena + snapshot. Cheap to share (`Arc`); create
/// per-thread handles with [`SharedStore::worker`].
pub struct SharedStore {
    /// Fast staleness probe: equals `current`'s generation. Stored
    /// (release) after each install, probed (acquire) lock-free.
    generation: AtomicU64,
    /// Fast epoch probe: equals `current`'s epoch. Lets
    /// [`WorkerStore::repin`] cost one atomic load when nothing moved.
    epoch: AtomicU64,
    /// The current snapshot (which owns the current epoch's arena).
    /// Locked only to refresh after a stale probe and to install —
    /// never on the warm path.
    current: RwLock<Arc<Snapshot>>,
    /// Writer mutex: pending delta + arena tail. Cold path only.
    pending: Mutex<Pending>,
    counters: Counters,
    /// Lock-free size mirrors for `stats()` / `live_bytes()`.
    sizes: Sizes,
    /// Cold-path instrumentation, if an owner installed any. Probed
    /// only where the writer mutex is already in play.
    obs: OnceLock<StoreObs>,
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedStore")
            .field("nodes", &self.len())
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for SharedStore {
    fn default() -> SharedStore {
        SharedStore::new()
    }
}

impl SharedStore {
    pub fn new() -> SharedStore {
        SharedStore {
            generation: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            current: RwLock::new(Arc::new(Snapshot::empty())),
            pending: Mutex::new(Pending::default()),
            counters: Counters::default(),
            sizes: Sizes::default(),
            obs: OnceLock::new(),
        }
    }

    /// Install cold-path observability hooks (slow-path and install
    /// histograms plus an event sink). Returns `false` if hooks were
    /// already installed — the first installer wins, so two engines
    /// sharing one store do not double-count.
    pub fn install_obs(&self, obs: StoreObs) -> bool {
        self.obs.set(obs).is_ok()
    }

    /// Convenience: a fresh store behind an [`Arc`], ready for
    /// [`SharedStore::worker`].
    pub fn new_arc() -> Arc<SharedStore> {
        Arc::new(SharedStore::new())
    }

    /// Attaches a new per-thread worker handle (one counted lock, to
    /// grab the current snapshot).
    pub fn worker(self: &Arc<Self>) -> WorkerStore {
        self.counters.workers.fetch_add(1, Ordering::Relaxed);
        WorkerStore {
            snapshot: self.load_snapshot(),
            shared: Arc::clone(self),
            local: TypeStore::new(),
            delta_pos: Vec::new(),
            delta_neg: Vec::new(),
            stale: false,
            local_hits: 0,
            snapshot_hits: 0,
            misses: 0,
        }
    }

    /// Live nodes in the current epoch's arena (lock-free).
    pub fn len(&self) -> usize {
        self.sizes.nodes.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current compaction epoch (lock-free; 0 = never compacted).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Estimated live bytes (arena nodes + snapshot map layers). Two
    /// relaxed atomic loads — the bounded-memory policy can call this
    /// per request without touching the warm path.
    pub fn live_bytes(&self) -> u64 {
        self.sizes.arena_bytes.load(Ordering::Relaxed)
            + self.sizes.snapshot_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of the store-wide statistics (lock-free).
    pub fn stats(&self) -> StoreStats {
        let c = &self.counters;
        let z = &self.sizes;
        StoreStats {
            nodes: self.len() as u64,
            arena_bytes: z.arena_bytes.load(Ordering::Relaxed),
            snapshot_bytes: z.snapshot_bytes.load(Ordering::Relaxed),
            intern_entries: z.intern_entries.load(Ordering::Relaxed),
            memo_entries: z.memo_entries.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            reclaimed_bytes: c.reclaimed_bytes.load(Ordering::Relaxed),
            nrm_hits: c.nrm_local_hits.load(Ordering::Relaxed)
                + c.nrm_snapshot_hits.load(Ordering::Relaxed),
            nrm_shared_hits: c.nrm_snapshot_hits.load(Ordering::Relaxed),
            nrm_misses: c.nrm_misses.load(Ordering::Relaxed),
            publishes: c.publishes.load(Ordering::Relaxed),
            workers: c.workers.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
            snapshot_installs: c.installs.load(Ordering::Relaxed),
            slow_path: c.slow_path.load(Ordering::Relaxed),
            lock_acquisitions: c.lock_acquisitions.load(Ordering::Relaxed),
        }
    }

    fn count_lock(&self) {
        self.counters
            .lock_acquisitions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the current snapshot (one counted read-lock).
    fn load_snapshot(&self) -> Arc<Snapshot> {
        self.count_lock();
        Arc::clone(&self.current.read())
    }

    /// Installs the pending delta as a new generation. Caller holds the
    /// writer mutex; `base` must be the current snapshot (its generation
    /// cannot move while the mutex is held).
    fn install_locked(&self, pending: &mut Pending, base: &Snapshot) -> Arc<Snapshot> {
        let span = self.obs.get().map(|_| Span::begin());
        let (delta_intern, delta_memo) = (
            pending.intern.len() as u64,
            (pending.pos.len() + pending.neg.len()) as u64,
        );
        let next = Arc::new(Snapshot {
            generation: base.generation + 1,
            epoch: base.epoch,
            nodes_len: base.arena.len(),
            arena: Arc::clone(&base.arena),
            intern: base.intern.with_delta(std::mem::take(&mut pending.intern)),
            pos: base.pos.with_delta(std::mem::take(&mut pending.pos)),
            neg: base.neg.with_delta(std::mem::take(&mut pending.neg)),
        });
        debug_assert!(
            next.intern.len() <= next.nodes_len,
            "snapshot names an id beyond the arena"
        );
        self.record_sizes(&next);
        self.count_lock();
        *self.current.write() = Arc::clone(&next);
        // Release: pairs with the acquire probe in `WorkerStore::refresh`.
        self.generation.store(next.generation, Ordering::Release);
        self.counters.installs.fetch_add(1, Ordering::Relaxed);
        if let (Some(obs), Some(span)) = (self.obs.get(), span) {
            let ns = span.elapsed_ns();
            obs.install_ns.record(ns);
            if obs.sink.enabled(Level::Debug) {
                obs.sink.event(
                    Level::Debug,
                    "snapshot_install",
                    &[
                        ("generation", Field::U64(next.generation)),
                        ("nodes", Field::U64(next.nodes_len as u64)),
                        ("delta_intern", Field::U64(delta_intern)),
                        ("delta_memo", Field::U64(delta_memo)),
                        ("install_us", Field::F64(ns as f64 / 1_000.0)),
                    ],
                );
            }
        }
        next
    }

    /// Refreshes the lock-free size mirrors from a just-installed
    /// snapshot. Caller holds the writer mutex.
    fn record_sizes(&self, snap: &Snapshot) {
        let z = &self.sizes;
        z.snapshot_bytes
            .store(snap.table_bytes(), Ordering::Relaxed);
        z.intern_entries
            .store(snap.intern.len() as u64, Ordering::Relaxed);
        z.memo_entries
            .store((snap.pos.len() + snap.neg.len()) as u64, Ordering::Relaxed);
    }

    /// Cold interning slow path: the only place nodes are appended.
    /// Returns the id plus the snapshot the decision was made against
    /// (possibly newer than the caller's) — or `None` when the store
    /// has moved to a newer epoch than `epoch`, in which case the
    /// caller's ids no longer name this store's arena and it must go
    /// local-private (see [`WorkerStore`] staleness).
    fn intern_slow(&self, node: &TNode, epoch: u64) -> Option<(TypeId, Arc<Snapshot>)> {
        let span = self.obs.get().map(|_| Span::begin());
        let out = self.intern_slow_inner(node, epoch);
        if let (Some(obs), Some(span)) = (self.obs.get(), span) {
            obs.slow_path_ns.record(span.elapsed_ns());
        }
        out
    }

    fn intern_slow_inner(&self, node: &TNode, epoch: u64) -> Option<(TypeId, Arc<Snapshot>)> {
        self.counters.slow_path.fetch_add(1, Ordering::Relaxed);
        self.count_lock();
        let mut pending = self.pending.lock();
        // Re-read under the mutex: another writer may have installed a
        // newer generation — or a whole new epoch — between our
        // lock-free probes and here.
        let snap = self.load_snapshot();
        if snap.epoch != epoch {
            // The node's children are old-epoch ids; appending it here
            // would corrupt the new arena. The caller goes stale.
            return None;
        }
        if let Some(id) = snap.intern.get(node) {
            return Some((id, snap));
        }
        if let Some(&id) = pending.intern.get(node) {
            return Some((id, snap));
        }
        let id = TypeId::from_index(snap.arena.push(node.clone()));
        self.sizes.nodes.store(snap.arena.len(), Ordering::Release);
        self.sizes
            .arena_bytes
            .fetch_add(node_bytes(node), Ordering::Relaxed);
        pending.intern.insert(node.clone(), id);
        if pending.len() >= INSTALL_THRESHOLD {
            let snap = self.install_locked(&mut pending, &snap);
            return Some((id, snap));
        }
        Some((id, snap))
    }

    /// Folds a worker's memo deltas into the pending delta and installs
    /// a new generation. Called only with non-empty deltas. Returns
    /// `None` — dropping the deltas — when the store has moved past
    /// `epoch`: old-epoch ids must never enter a new-epoch snapshot.
    fn publish_deltas(
        &self,
        epoch: u64,
        pos: &[(TypeId, TypeId)],
        neg: &[(TypeId, TypeId)],
    ) -> Option<Arc<Snapshot>> {
        self.count_lock();
        let mut pending = self.pending.lock();
        let snap = self.load_snapshot();
        if snap.epoch != epoch {
            return None;
        }
        pending.pos.extend(pos.iter().copied());
        pending.neg.extend(neg.iter().copied());
        if pending.is_empty() {
            return Some(snap);
        }
        Some(self.install_locked(&mut pending, &snap))
    }

    /// Compacts the store: drops every node not reachable from `roots`
    /// (plus the memoized normal forms of live ids, kept so the warm
    /// working set survives), rebuilds the arena and tables in a fresh
    /// epoch, and installs the result as a new generation. See the
    /// module docs ("Compaction") for the full protocol.
    ///
    /// Runs behind the writer mutex; warm readers keep reading their
    /// pinned epoch throughout and never block. Roots that do not name
    /// a current-epoch id (e.g. collected before a racing compaction)
    /// are ignored.
    pub fn compact(&self, roots: &[TypeId]) -> CompactionOutcome {
        let span = self.obs.get().map(|_| Span::begin());
        self.count_lock();
        let mut pending = self.pending.lock();
        let mut snap = self.load_snapshot();
        // Flush so the snapshot is the complete truth.
        if !pending.is_empty() {
            snap = self.install_locked(&mut pending, &Arc::clone(&snap));
        }
        let old_arena = Arc::clone(&snap.arena);
        let old_len = old_arena.len();
        let bytes_before = self.live_bytes();

        // Mark: roots → children closure, plus memo values of live ids.
        let mut live = vec![false; old_len];
        let mut stack: Vec<usize> = roots
            .iter()
            .map(|r| r.index())
            .filter(|&i| i < old_len)
            .collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            push_children(old_arena.get(i), &mut stack);
            let id = TypeId::from_index(i);
            for table in [&snap.pos, &snap.neg] {
                if let Some(v) = table.get(&id) {
                    if !live[v.index()] {
                        stack.push(v.index());
                    }
                }
            }
        }

        // Rebuild in old-index order: children precede parents, so every
        // child is remapped before a parent mentions it, and the new
        // arena is again topological (store invariant).
        let new_arena = Arc::new(Arena::new());
        let mut remap_vec: Vec<Option<TypeId>> = vec![None; old_len];
        let mut intern = HashMap::new();
        let mut arena_bytes = 0u64;
        for (i, alive) in live.iter().enumerate() {
            if !alive {
                continue;
            }
            let node = remap_node(old_arena.get(i), &remap_vec);
            arena_bytes += node_bytes(&node);
            let ni = TypeId::from_index(new_arena.push(node.clone()));
            intern.insert(node, ni);
            remap_vec[i] = Some(ni);
        }
        let (mut pos, mut neg) = (HashMap::new(), HashMap::new());
        for (i, alive) in live.iter().enumerate() {
            if !alive {
                continue;
            }
            let id = TypeId::from_index(i);
            for (table, out) in [(&snap.pos, &mut pos), (&snap.neg, &mut neg)] {
                if let Some(v) = table.get(&id) {
                    // The value is live by the marking closure.
                    out.insert(remap_vec[i].unwrap(), remap_vec[v.index()].unwrap());
                }
            }
        }

        let next = Arc::new(Snapshot {
            generation: snap.generation + 1,
            epoch: snap.epoch + 1,
            nodes_len: new_arena.len(),
            arena: new_arena,
            intern: Layers::new().with_delta(intern),
            pos: Layers::new().with_delta(pos),
            neg: Layers::new().with_delta(neg),
        });
        self.sizes.nodes.store(next.nodes_len, Ordering::Release);
        self.sizes.arena_bytes.store(arena_bytes, Ordering::Relaxed);
        self.record_sizes(&next);
        self.count_lock();
        *self.current.write() = Arc::clone(&next);
        // Release both probes after the swap, epoch first: a worker
        // that sees the new generation and refreshes will find a
        // snapshot whose epoch mismatch it detects directly.
        self.epoch.store(next.epoch, Ordering::Release);
        self.generation.store(next.generation, Ordering::Release);
        self.counters.installs.fetch_add(1, Ordering::Relaxed);
        self.counters.compactions.fetch_add(1, Ordering::Relaxed);
        drop(pending);

        let bytes_after = self.live_bytes();
        self.counters
            .reclaimed_bytes
            .fetch_add(bytes_before.saturating_sub(bytes_after), Ordering::Relaxed);
        let remap: HashMap<TypeId, TypeId> = remap_vec
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.map(|n| (TypeId::from_index(i), n)))
            .collect();
        if let (Some(obs), Some(span)) = (self.obs.get(), span) {
            let ns = span.elapsed_ns();
            obs.install_ns.record(ns);
            if obs.sink.enabled(Level::Debug) {
                obs.sink.event(
                    Level::Debug,
                    "store_compaction",
                    &[
                        ("epoch", Field::U64(next.epoch)),
                        ("nodes_before", Field::U64(old_len as u64)),
                        ("nodes_after", Field::U64(next.nodes_len as u64)),
                        ("bytes_before", Field::U64(bytes_before)),
                        ("bytes_after", Field::U64(bytes_after)),
                        ("compact_us", Field::F64(ns as f64 / 1_000.0)),
                    ],
                );
            }
        }
        CompactionOutcome {
            epoch: next.epoch,
            nodes_before: old_len,
            nodes_after: next.nodes_len,
            bytes_before,
            bytes_after,
            remap,
        }
    }
}

/// Pushes the arena indices of `node`'s children onto `stack`.
fn push_children(node: &TNode, stack: &mut Vec<usize>) {
    match node {
        TNode::Unit
        | TNode::Base(_)
        | TNode::Free(_)
        | TNode::Bound(_)
        | TNode::EndIn
        | TNode::EndOut => {}
        TNode::Arrow(a, b) | TNode::Pair(a, b) | TNode::In(a, b) | TNode::Out(a, b) => {
            stack.push(a.index());
            stack.push(b.index());
        }
        TNode::Forall(_, b) | TNode::Dual(b) | TNode::Neg(b) => stack.push(b.index()),
        TNode::Proto(_, args) | TNode::Data(_, args) => {
            stack.extend(args.iter().map(|a| a.index()));
        }
    }
}

/// `node` with every child id remapped through `remap`. Callable only
/// when all children are already remapped (guaranteed by old-index
/// rebuild order).
fn remap_node(node: &TNode, remap: &[Option<TypeId>]) -> TNode {
    let m = |id: &TypeId| remap[id.index()].expect("child of a live node must be live");
    match node {
        TNode::Unit => TNode::Unit,
        TNode::Base(b) => TNode::Base(*b),
        TNode::Free(s) => TNode::Free(*s),
        TNode::Bound(i) => TNode::Bound(*i),
        TNode::EndIn => TNode::EndIn,
        TNode::EndOut => TNode::EndOut,
        TNode::Arrow(a, b) => TNode::Arrow(m(a), m(b)),
        TNode::Pair(a, b) => TNode::Pair(m(a), m(b)),
        TNode::In(a, b) => TNode::In(m(a), m(b)),
        TNode::Out(a, b) => TNode::Out(m(a), m(b)),
        TNode::Forall(k, b) => TNode::Forall(*k, m(b)),
        TNode::Dual(b) => TNode::Dual(m(b)),
        TNode::Neg(b) => TNode::Neg(m(b)),
        TNode::Proto(s, args) => TNode::Proto(*s, args.iter().map(&m).collect()),
        TNode::Data(s, args) => TNode::Data(*s, args.iter().map(m).collect()),
    }
}

// ------------------------------------------------------- WorkerStore

/// A per-thread (or per-worker) handle onto a [`SharedStore`].
///
/// Implements the same id-level operations as [`TypeStore`] — `intern`,
/// `nrm`, `equivalent_ids`, substitution, extraction — with identical
/// semantics (both run the [`StoreOps`] algorithms). Warm queries touch
/// only the local mirror and the cached immutable snapshot (no locks);
/// cold ones enter the shared writer mutex and publish what they learn.
pub struct WorkerStore {
    shared: Arc<SharedStore>,
    /// Cached (possibly behind) snapshot; refreshed only after a miss
    /// when the generation probe says the store has moved. Pins this
    /// worker's epoch: the snapshot owns the arena its ids name.
    snapshot: Arc<Snapshot>,
    /// Prefix-consistent mirror of the pinned arena; also holds the
    /// local memo caches, binder-name hints and the extraction memo.
    local: TypeStore,
    /// Memo entries computed here and not yet published.
    delta_pos: Vec<(TypeId, TypeId)>,
    delta_neg: Vec<(TypeId, TypeId)>,
    /// Set when the store compacted past this worker's pinned epoch.
    /// A stale worker keeps answering from its pinned snapshot, interns
    /// cold nodes privately into the mirror, and publishes nothing —
    /// until [`WorkerStore::repin`] adopts the new epoch.
    stale: bool,
    local_hits: u64,
    snapshot_hits: u64,
    misses: u64,
}

impl std::fmt::Debug for WorkerStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerStore")
            .field("mirrored", &self.local.len())
            .field("generation", &self.snapshot.generation)
            .field(
                "unpublished",
                &(self.delta_pos.len() + self.delta_neg.len()),
            )
            .finish()
    }
}

impl WorkerStore {
    /// The shared store this worker belongs to.
    pub fn shared(&self) -> &Arc<SharedStore> {
        &self.shared
    }

    /// Read-only view of the local mirror, for code that takes a plain
    /// [`TypeStore`] (e.g. id-level kind checking). Every id this worker
    /// has produced or looked at is present in the mirror.
    pub fn local(&self) -> &TypeStore {
        &self.local
    }

    /// This worker's pinned compaction epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch
    }

    /// True when the store has compacted past this worker's pinned
    /// epoch (cleared by [`WorkerStore::repin`]).
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Re-reads the generation counter (acquire load, no RMW) and
    /// refreshes the cached snapshot if the store has moved *within
    /// this worker's epoch*. Returns true when the snapshot changed.
    /// A cross-epoch move marks the worker stale instead of adopting:
    /// the new snapshot's ids would not name the pinned arena. Once
    /// stale, the probe short-circuits — the store can only move
    /// further away.
    fn refresh(&mut self) -> bool {
        if self.stale {
            return false;
        }
        if self.shared.generation.load(Ordering::Acquire) == self.snapshot.generation {
            return false;
        }
        let snap = self.shared.load_snapshot();
        if snap.epoch != self.snapshot.epoch {
            self.stale = true;
            return false;
        }
        self.snapshot = snap;
        true
    }

    /// Adopts the newest epoch after a compaction: resets the local
    /// mirror and drops unpublished (old-epoch) deltas. Returns true
    /// when the epoch actually changed — the caller must then drop or
    /// remap every `TypeId`-keyed cache it holds, because old ids no
    /// longer name the store's arena. Costs one atomic load when the
    /// epoch has not moved, so calling it per batch is free on the
    /// warm path.
    pub fn repin(&mut self) -> bool {
        if !self.stale && self.shared.epoch.load(Ordering::Acquire) == self.snapshot.epoch {
            return false;
        }
        self.delta_pos.clear();
        self.delta_neg.clear();
        self.snapshot = self.shared.load_snapshot();
        self.local = TypeStore::new();
        self.stale = false;
        true
    }

    /// Extends the local mirror to cover `id`, reading this worker's
    /// pinned lock-free arena directly. Copying in arena order
    /// reproduces the shared indices exactly (see module docs).
    fn sync_to(&mut self, id: TypeId) {
        if self.local.len() > id.index() {
            return;
        }
        for i in self.local.len()..=id.index() {
            let got = self.local.mk(self.snapshot.arena.get(i).clone());
            debug_assert_eq!(got.index(), i, "mirror diverged from shared arena");
        }
    }

    /// Extends the local mirror over the *entire* pinned arena, then
    /// interns `node` locally. Every local-private id must land
    /// strictly beyond the shared prefix: the mirror is synced lazily,
    /// so without this a fresh local id could numerically collide with
    /// a shared arena index this worker never looked at — and the
    /// snapshot's intern/memo tables, keyed by that index, would then
    /// answer for a *different* type. Sound because staleness is only
    /// observed after a compaction has moved the epoch, at which point
    /// the pinned arena is frozen (every `intern_slow` against it now
    /// fails the epoch check), so its length is final.
    fn mk_local(&mut self, node: TNode) -> TypeId {
        let len = self.snapshot.arena.len();
        if len > 0 {
            self.sync_to(TypeId::from_index(len - 1));
        }
        self.local.mk(node)
    }

    /// Publishes this worker's memo deltas as a new snapshot generation
    /// and folds its hit/miss counters into the shared statistics.
    /// Takes no locks when there is nothing to publish. A stale
    /// worker's deltas are dropped (old-epoch ids must never enter a
    /// new-epoch snapshot); the epoch check in `publish_deltas` closes
    /// the race where a compaction lands between the worker's last
    /// probe and the publish.
    pub fn publish(&mut self) {
        if !self.delta_pos.is_empty() || !self.delta_neg.is_empty() {
            if !self.stale {
                match self.shared.publish_deltas(
                    self.snapshot.epoch,
                    &self.delta_pos,
                    &self.delta_neg,
                ) {
                    Some(snap) => {
                        self.snapshot = snap;
                        self.shared
                            .counters
                            .publishes
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    None => self.stale = true,
                }
            }
            self.delta_pos.clear();
            self.delta_neg.clear();
        }
        let c = &self.shared.counters;
        if self.local_hits > 0 {
            c.nrm_local_hits
                .fetch_add(self.local_hits, Ordering::Relaxed);
            self.local_hits = 0;
        }
        if self.snapshot_hits > 0 {
            c.nrm_snapshot_hits
                .fetch_add(self.snapshot_hits, Ordering::Relaxed);
            self.snapshot_hits = 0;
        }
        if self.misses > 0 {
            c.nrm_misses.fetch_add(self.misses, Ordering::Relaxed);
            self.misses = 0;
        }
    }

    fn maybe_publish(&mut self) {
        if self.delta_pos.len() + self.delta_neg.len() >= PUBLISH_THRESHOLD {
            self.publish();
        }
    }

    // ---------------------------------------------------- mirrored API

    /// Interns a boundary [`Type`]; the id is valid across all workers
    /// of this [`SharedStore`].
    pub fn intern(&mut self, t: &Type) -> TypeId {
        StoreOps::intern(self, t)
    }

    /// Memoized `nrm⁺` at the id level (local mirror → snapshot →
    /// compute and record).
    pub fn nrm(&mut self, id: TypeId) -> TypeId {
        StoreOps::nrm(self, id)
    }

    /// Memoized `nrm⁻` at the id level.
    pub fn nrm_neg(&mut self, id: TypeId) -> TypeId {
        StoreOps::nrm_neg(self, id)
    }

    /// Decides `T ≡_A U` as id equality of memoized normal forms.
    pub fn equivalent_ids(&mut self, a: TypeId, b: TypeId) -> bool {
        StoreOps::equivalent_ids(self, a, b)
    }

    /// True when `id` is already recorded (locally) as its own normal
    /// form — the no-traversal fast path.
    pub fn is_normalized(&mut self, id: TypeId) -> bool {
        StoreOps::memo_pos_entry(self, id) == Some(id)
    }

    /// Simultaneous, capture-free substitution of ids for free variables.
    pub fn subst_free(&mut self, id: TypeId, map: &HashMap<Symbol, TypeId>) -> TypeId {
        StoreOps::subst_free(self, id, map)
    }

    /// β-instantiation of the outermost `∀` binder of `forall_id`.
    pub fn instantiate(&mut self, forall_id: TypeId, arg: TypeId) -> Option<TypeId> {
        StoreOps::instantiate(self, forall_id, arg)
    }

    /// Converts an id back to a boundary [`Type`] (binder names from
    /// this worker's first-intern hints where capture-free).
    pub fn extract(&mut self, id: TypeId) -> Type {
        self.sync_to(id);
        self.local.extract(id)
    }

    /// [`WorkerStore::extract`] with the mirror's per-id memo.
    pub fn extract_cached(&mut self, id: TypeId) -> Type {
        self.sync_to(id);
        self.local.extract_cached(id)
    }

    /// Tree-node count of the type behind `id`.
    pub fn node_count(&mut self, id: TypeId) -> u64 {
        self.sync_to(id);
        self.local.node_count(id)
    }
}

impl StoreOps for WorkerStore {
    fn node_owned(&mut self, id: TypeId) -> TNode {
        self.sync_to(id);
        self.local.node(id).clone()
    }

    fn mk_node(&mut self, node: TNode) -> TypeId {
        if let Some(id) = self.local.lookup_node(&node) {
            return id;
        }
        // The pinned snapshot stays probe-able even when stale — it is
        // immutable and its ids name the pinned arena.
        let mut found = self.snapshot.intern.get(&node);
        if found.is_none() && self.refresh() {
            found = self.snapshot.intern.get(&node);
        }
        let id = match found {
            Some(id) => id,
            None if self.stale => {
                // Local-private intern: the mirror grows beyond the
                // shared prefix; such ids are never published and die
                // at the next repin.
                return self.mk_local(node);
            }
            None => match self.shared.intern_slow(&node, self.snapshot.epoch) {
                Some((id, snap)) => {
                    if snap.generation > self.snapshot.generation {
                        self.snapshot = snap;
                    }
                    id
                }
                None => {
                    // A compaction won the race; fall back to a
                    // local-private intern and go stale.
                    self.stale = true;
                    return self.mk_local(node);
                }
            },
        };
        self.sync_to(id);
        id
    }

    fn binders_needed(&mut self, id: TypeId) -> u32 {
        self.sync_to(id);
        StoreOps::binders_needed(&mut self.local, id)
    }

    fn memo_pos_entry(&mut self, id: TypeId) -> Option<TypeId> {
        self.sync_to(id);
        if let Some(n) = StoreOps::memo_pos_entry(&mut self.local, id) {
            self.local_hits += 1;
            return Some(n);
        }
        let mut hit = self.snapshot.pos.get(&id);
        if hit.is_none() && self.refresh() {
            hit = self.snapshot.pos.get(&id);
        }
        if let Some(n) = hit {
            self.snapshot_hits += 1;
            self.sync_to(n);
            StoreOps::memo_pos_record(&mut self.local, id, n);
            return Some(n);
        }
        self.misses += 1;
        None
    }

    fn memo_pos_record(&mut self, id: TypeId, nf: TypeId) {
        self.sync_to(id);
        self.sync_to(nf);
        StoreOps::memo_pos_record(&mut self.local, id, nf);
        // Stale workers keep the memo locally but publish nothing:
        // their ids no longer name the shared arena.
        if !self.stale {
            self.delta_pos.push((id, nf));
            self.maybe_publish();
        }
    }

    fn memo_neg_entry(&mut self, id: TypeId) -> Option<TypeId> {
        self.sync_to(id);
        if let Some(n) = StoreOps::memo_neg_entry(&mut self.local, id) {
            self.local_hits += 1;
            return Some(n);
        }
        let mut hit = self.snapshot.neg.get(&id);
        if hit.is_none() && self.refresh() {
            hit = self.snapshot.neg.get(&id);
        }
        if let Some(n) = hit {
            self.snapshot_hits += 1;
            self.sync_to(n);
            StoreOps::memo_neg_record(&mut self.local, id, n);
            return Some(n);
        }
        self.misses += 1;
        None
    }

    fn memo_neg_record(&mut self, id: TypeId, nf: TypeId) {
        self.sync_to(id);
        self.sync_to(nf);
        StoreOps::memo_neg_record(&mut self.local, id, nf);
        if !self.stale {
            self.delta_neg.push((id, nf));
            self.maybe_publish();
        }
    }

    fn note_binder_hint(&mut self, id: TypeId, name: Symbol) {
        // Hints are display-only and stay worker-local: each worker
        // shows the names *it* first interned, exactly like the previous
        // thread-local store.
        self.local.record_binder_hint(id, name);
    }
}

impl Drop for WorkerStore {
    fn drop(&mut self) {
        self.publish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::Kind;
    use crate::normalize::nrm_pos;

    fn samples() -> Vec<Type> {
        vec![
            Type::dual(Type::input(Type::neg(Type::int()), Type::var("a"))),
            Type::dual(Type::dual(Type::output(Type::int(), Type::EndIn))),
            Type::proto("ShPQ", vec![Type::neg(Type::neg(Type::neg(Type::int())))]),
            Type::forall(
                "s",
                Kind::Session,
                Type::arrow(
                    Type::dual(Type::output(Type::int(), Type::var("s"))),
                    Type::var("s"),
                ),
            ),
            Type::output(
                Type::proto("ShRep", vec![Type::int()]),
                Type::input(Type::bool(), Type::EndOut),
            ),
        ]
    }

    #[test]
    fn arena_locate_round_trips() {
        let mut flat = 0usize;
        for seg in 0..6usize {
            let size = 1usize << (seg as u32 + SEG0_BITS);
            for off in [0, 1, size / 2, size - 1] {
                let i = (1usize << (seg as u32 + SEG0_BITS)) - (1 << SEG0_BITS) + off;
                assert_eq!(Arena::locate(i), (seg, off), "index {i}");
            }
            flat += size;
        }
        assert!(flat > 0);
    }

    #[test]
    fn layers_compact_and_shadow() {
        let mut layers: Layers<u32, u32> = Layers::new();
        for gen in 0..100u32 {
            let mut delta = HashMap::new();
            delta.insert(gen, gen * 2);
            delta.insert(1000 + gen % 3, gen); // repeatedly overwritten keys
            layers = layers.with_delta(delta);
        }
        assert!(
            layers.layers.len() <= 8,
            "compaction failed: {} layers for 100 deltas",
            layers.layers.len()
        );
        for gen in 0..100u32 {
            assert_eq!(layers.get(&gen), Some(gen * 2));
        }
        // Newest write wins for shadowed keys: key 1000 is written by every
        // gen with gen % 3 == 0, so gen 99 is the last writer.
        assert_eq!(layers.get(&1000), Some(99));
    }

    #[test]
    fn workers_agree_on_ids_and_verdicts() {
        let shared = SharedStore::new_arc();
        let mut w1 = shared.worker();
        let mut w2 = shared.worker();
        for t in samples() {
            let a = w1.intern(&t);
            let b = w2.intern(&t);
            assert_eq!(a, b, "workers disagree on the id of {t}");
            assert_eq!(w1.nrm(a), w2.nrm(b), "workers disagree on nrm of {t}");
        }
    }

    #[test]
    fn worker_nrm_agrees_with_tree_and_private_store() {
        let shared = SharedStore::new_arc();
        let mut w = shared.worker();
        let mut private = TypeStore::new();
        for t in samples() {
            let wid = w.intern(&t);
            let wn = w.nrm(wid);
            let via_tree = w.intern(&nrm_pos(&t));
            assert_eq!(wn, via_tree, "worker nrm disagrees with tree nrm on {t}");
            let pid = private.intern(&t);
            let pn = private.nrm(pid);
            assert!(
                w.extract(wn).alpha_eq(&private.extract(pn)),
                "worker and private normal forms differ on {t}"
            );
        }
    }

    #[test]
    fn published_memos_warm_other_workers() {
        let shared = SharedStore::new_arc();
        let t = Type::dual(Type::output(Type::int(), Type::var("warmShared")));
        let mut w1 = shared.worker();
        let id = w1.intern(&t);
        let n = w1.nrm(id);
        w1.publish();
        // A brand-new worker sees the published memo: its first nrm is a
        // snapshot hit, not a recomputation.
        let mut w2 = shared.worker();
        let before = shared.stats();
        assert_eq!(w2.nrm(id), n);
        w2.publish();
        let after = shared.stats();
        assert!(after.nrm_shared_hits > before.nrm_shared_hits);
        assert_eq!(after.nrm_misses, before.nrm_misses, "nothing recomputed");
    }

    #[test]
    fn threshold_install_shares_cold_interns_without_publish() {
        let shared = SharedStore::new_arc();
        let mut w1 = shared.worker();
        // Intern well past INSTALL_THRESHOLD fresh nodes; never publish.
        for i in 0..(4 * INSTALL_THRESHOLD) {
            w1.intern(&Type::output(
                Type::int(),
                Type::var(format!("v{i}").as_str()),
            ));
        }
        let stats = shared.stats();
        assert!(
            stats.snapshot_installs >= 1,
            "cold interning must install snapshots on its own"
        );
        assert!(stats.slow_path >= 4 * INSTALL_THRESHOLD as u64);
        // A fresh worker resolves an installed node without the slow path.
        let mut w2 = shared.worker();
        let before = shared.stats().slow_path;
        w2.intern(&Type::output(Type::int(), Type::var("v0")));
        assert_eq!(shared.stats().slow_path, before, "hit must be lock-free");
    }

    #[test]
    fn extraction_round_trips_through_a_worker() {
        let shared = SharedStore::new_arc();
        let mut w = shared.worker();
        for t in samples() {
            let id = w.intern(&t);
            let back = w.extract(id);
            assert!(t.alpha_eq(&back), "{t} vs {back}");
            assert_eq!(w.intern(&back), id);
        }
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let shared = SharedStore::new_arc();
        let mut w = shared.worker();
        let t = Type::dual(Type::input(Type::int(), Type::EndIn));
        let u = Type::output(Type::int(), Type::dual(Type::EndIn));
        let (a, b) = (w.intern(&t), w.intern(&u));
        assert!(w.equivalent_ids(a, b));
        assert!(w.equivalent_ids(a, b), "second query must stay warm");
        w.publish();
        let stats = shared.stats();
        assert!(stats.nodes > 0);
        assert!(stats.nrm_misses > 0, "first contact computes");
        assert!(stats.nrm_hits > 0, "second contact hits the memo");
        assert!(stats.nrm_hit_rate() > 0.0 && stats.nrm_hit_rate() < 1.0);
        assert_eq!(stats.workers, 1);
        assert!(stats.generation >= 1, "publish installs a generation");
        assert!(stats.snapshot_installs >= 1);
        assert!(stats.slow_path > 0, "cold interning walks the slow path");
    }

    #[test]
    fn compaction_retains_roots_and_remaps_ids() {
        let shared = SharedStore::new_arc();
        let mut w = shared.worker();
        let keep = Type::dual(Type::output(Type::int(), Type::var("kept")));
        let drop_ = Type::proto("CpGone", vec![Type::neg(Type::bool())]);
        let keep_id = w.intern(&keep);
        let keep_nrm = w.nrm(keep_id);
        let drop_id = w.intern(&drop_);
        w.publish();
        let before = shared.stats();
        assert!(before.live_bytes() > 0, "accounting must track interns");

        let outcome = shared.compact(&[keep_id]);
        assert_eq!(outcome.epoch, 1);
        assert!(outcome.nodes_after < outcome.nodes_before);
        assert_eq!(shared.stats().epoch, 1);
        assert_eq!(shared.stats().compactions, 1);
        assert!(shared.stats().live_bytes() < before.live_bytes());
        assert!(outcome.remap.contains_key(&keep_id), "roots survive");
        assert!(
            outcome.remap.contains_key(&keep_nrm),
            "memoized normal forms of live ids survive"
        );
        assert!(
            !outcome.remap.contains_key(&drop_id),
            "unreachable ids are dropped"
        );

        // A fresh (new-epoch) worker re-interns the kept type at its
        // remapped id and finds its memo warm (no recomputation).
        let mut w2 = shared.worker();
        let misses_before = shared.stats().nrm_misses;
        let new_id = w2.intern(&keep);
        assert_eq!(new_id, outcome.remap[&keep_id]);
        assert_eq!(w2.nrm(new_id), outcome.remap[&keep_nrm]);
        w2.publish();
        assert_eq!(
            shared.stats().nrm_misses,
            misses_before,
            "compaction must keep the warm working set warm"
        );
    }

    #[test]
    fn compacting_an_empty_store_is_a_no_op_epoch_bump() {
        let shared = SharedStore::new_arc();
        let outcome = shared.compact(&[]);
        assert_eq!((outcome.nodes_before, outcome.nodes_after), (0, 0));
        assert_eq!(outcome.epoch, 1);
        assert!(outcome.remap.is_empty());
        // The store still works afterwards.
        let mut w = shared.worker();
        let id = w.intern(&Type::output(Type::int(), Type::EndIn));
        assert_eq!(w.nrm(id), w.nrm(id));
    }

    #[test]
    fn compacting_with_zero_roots_empties_the_store() {
        let shared = SharedStore::new_arc();
        let mut w = shared.worker();
        for t in samples() {
            let id = w.intern(&t);
            w.nrm(id);
        }
        w.publish();
        let outcome = shared.compact(&[]);
        assert!(outcome.nodes_before > 0);
        assert_eq!(outcome.nodes_after, 0);
        assert_eq!(shared.len(), 0);
        assert_eq!(shared.stats().arena_bytes, 0);
        // Everything can be re-interned from scratch.
        let mut w2 = shared.worker();
        for t in samples() {
            let id = w2.intern(&t);
            assert!(w2.equivalent_ids(id, id));
        }
    }

    #[test]
    fn back_to_back_compactions_are_stable() {
        let shared = SharedStore::new_arc();
        let mut w = shared.worker();
        let t = samples().remove(3);
        let id = w.intern(&t);
        let n = w.nrm(id);
        w.publish();
        let first = shared.compact(&[id]);
        let (id1, n1) = (first.remap[&id], first.remap[&n]);
        let second = shared.compact(&[id1]);
        assert_eq!(second.epoch, 2);
        assert_eq!(
            second.nodes_before, second.nodes_after,
            "an already-minimal store loses nothing"
        );
        let id2 = second.remap[&id1];
        let mut w2 = shared.worker();
        assert_eq!(w2.intern(&t), id2);
        assert_eq!(w2.nrm(id2), second.remap[&n1]);
        assert!(t.alpha_eq(&w2.extract(id2)), "extraction survives remap");
    }

    #[test]
    fn stale_workers_stay_correct_and_repin_adopts_the_new_epoch() {
        let shared = SharedStore::new_arc();
        let mut old = shared.worker();
        let t = Type::dual(Type::input(Type::int(), Type::var("stale")));
        let id = old.intern(&t);
        old.publish();
        shared.compact(&[]);

        // The pinned epoch keeps answering: extraction, nrm, fresh
        // (now local-private) interns all still work.
        assert!(t.alpha_eq(&old.extract(id)));
        let n = old.nrm(id);
        assert!(old.equivalent_ids(id, n));
        let fresh = Type::output(Type::bool(), Type::var("postCompact"));
        let fid = old.intern(&fresh);
        assert!(old.is_stale(), "cold intern after compaction goes stale");
        assert!(t.alpha_eq(&old.extract(id)));
        assert!(fresh.alpha_eq(&old.extract(fid)));
        let shared_len = shared.len();
        // Private interns never published: the shared store is untouched.
        old.publish();
        assert_eq!(shared.len(), shared_len);

        // Repin adopts the new epoch; ids must be re-interned.
        assert!(old.repin());
        assert!(!old.is_stale());
        let re = old.intern(&t);
        assert!(t.alpha_eq(&old.extract(re)));
        assert!(!old.repin(), "second repin without a compaction is a no-op");
    }

    /// Regression: a stale worker whose lazily-synced mirror covers only
    /// a low-index prefix of its pinned arena must not mint local ids
    /// that numerically collide with unsynced shared indices — the
    /// pinned snapshot's memo tables are keyed by index and would answer
    /// with another type's normal form.
    #[test]
    fn stale_local_interns_never_collide_with_unsynced_shared_ids() {
        let shared = SharedStore::new_arc();
        // One worker fills the arena and publishes memos for everything.
        let mut w1 = shared.worker();
        for t in samples() {
            let id = w1.intern(&t);
            w1.nrm(id);
        }
        w1.publish();
        // A second worker pins the full snapshot but syncs its mirror
        // only up to the first sample's (low) ids.
        let mut w2 = shared.worker();
        let first = samples().remove(0);
        let low = w2.intern(&first);
        assert!(
            low.index() < shared.len() - 1,
            "mirror must be a strict prefix"
        );
        shared.compact(&[]);

        // A fresh intern goes stale and lands local-private; its normal
        // form must agree with the tree oracle, not with whatever memo
        // entry a colliding index would have held.
        let fresh = Type::dual(Type::output(
            Type::bool(),
            Type::input(Type::int(), Type::var("zCollide")),
        ));
        let fid = w2.intern(&fresh);
        assert!(w2.is_stale());
        let n = w2.nrm(fid);
        assert!(
            w2.extract(n).alpha_eq(&nrm_pos(&fresh)),
            "stale-worker normal form diverged from the tree oracle"
        );
        assert!(w2.equivalent_ids(fid, fid));
        assert!(!w2.equivalent_ids(fid, low), "distinct types stay distinct");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let shared = SharedStore::new_arc();
        let samples = samples();
        let ids: Vec<Vec<TypeId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let shared = &shared;
                    let samples = &samples;
                    scope.spawn(move || {
                        let mut w = shared.worker();
                        samples
                            .iter()
                            .map(|t| {
                                let id = w.intern(t);
                                let n = w.nrm(id);
                                assert!(w.equivalent_ids(id, n));
                                id
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for per_thread in &ids[1..] {
            assert_eq!(per_thread, &ids[0], "threads must agree on every id");
        }
    }
}
