//! A **sharded concurrent type store**: the multi-threaded lift of
//! [`crate::store`].
//!
//! The single-threaded [`TypeStore`] makes equivalence O(1) amortized,
//! but each thread used to pay its own cold interning and normalization.
//! This module shares that warm state across threads:
//!
//! * [`SharedStore`] — the process-wide, **read-mostly** source of truth:
//!   an append-only node arena plus hash-consing and `nrm⁺`/`nrm⁻` memo
//!   maps, each split over [`SHARDS`] `parking_lot` RwLocks so readers on
//!   different keys never contend. Because the arena is append-only, a
//!   [`TypeId`] is never invalidated: readers can cache anything they
//!   have seen forever.
//! * [`WorkerStore`] — a per-thread handle. It keeps a **local mirror**
//!   (a plain [`TypeStore`] whose arena is always a prefix-consistent
//!   copy of the shared one), so warm lookups are lock-free vector
//!   indexing, exactly as fast as the single-threaded store. Cache
//!   misses fall through to the shared shards; freshly computed memo
//!   entries accumulate in **write deltas** that are merged into the
//!   shared maps on [`WorkerStore::publish`] (called automatically at a
//!   size threshold and on drop) — after which *every* worker gets warm
//!   hits for them.
//!
//! ## Id agreement
//!
//! All workers of one [`SharedStore`] agree on ids: a node is appended to
//! the shared arena exactly once (under the arena write lock, re-checking
//! the intern shard), and a worker copies shared nodes into its mirror
//! *in arena order*, so the mirror's hash-consing assigns every node the
//! same index it has globally. Children always precede parents in an
//! append-only arena, so syncing a prefix keeps the mirror closed under
//! sub-ids.
//!
//! The id-level algorithms themselves (`intern`, `nrm⁺`/`nrm⁻`,
//! substitution, β-instantiation) are the *same code* as the
//! single-threaded store — both implement [`StoreOps`] — so verdicts
//! cannot drift between the two.

use crate::store::{StoreOps, TNode, TypeId, TypeStore};
use crate::symbol::Symbol;
use crate::types::Type;
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of lock shards per table. Power of two; keys are spread by
/// hash (intern map) or id (memo maps).
pub const SHARDS: usize = 16;

/// Delta size at which a worker auto-publishes its memo entries.
const PUBLISH_THRESHOLD: usize = 1024;

#[derive(Default)]
struct Counters {
    /// `nrm` memo hits answered from a worker's local mirror.
    nrm_local_hits: AtomicU64,
    /// `nrm` memo hits answered by a shared shard (then cached locally).
    nrm_shared_hits: AtomicU64,
    /// `nrm` memo misses (a normal form actually computed).
    nrm_misses: AtomicU64,
    /// Times a worker merged its deltas into the shared maps.
    publishes: AtomicU64,
    /// Workers ever attached.
    workers: AtomicU64,
}

/// A point-in-time snapshot of store-wide statistics, for the server's
/// `stats` op and `--stats-on-exit`. Worker-side counters are folded in
/// on every publish, so numbers trail the live state by at most one
/// unpublished delta per worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct hash-consed nodes in the shared arena.
    pub nodes: u64,
    /// `nrm⁺`/`nrm⁻` memo hits (local mirror + shared shards).
    pub nrm_hits: u64,
    /// Of those, hits that had to touch a shared shard.
    pub nrm_shared_hits: u64,
    /// `nrm⁺`/`nrm⁻` computations that found no memo entry.
    pub nrm_misses: u64,
    /// Delta merges performed by workers.
    pub publishes: u64,
    /// Workers ever attached to this store.
    pub workers: u64,
}

impl StoreStats {
    /// Fraction of `nrm` queries answered from a memo, in `[0, 1]`.
    pub fn nrm_hit_rate(&self) -> f64 {
        let total = self.nrm_hits + self.nrm_misses;
        if total == 0 {
            return 0.0;
        }
        self.nrm_hits as f64 / total as f64
    }
}

/// The process-wide arena + memo tables. Cheap to share (`Arc`); create
/// per-thread handles with [`SharedStore::worker`].
pub struct SharedStore {
    /// Append-only node arena: the id space. Guarded by one RwLock —
    /// workers only read it when extending their mirror (rare after
    /// warm-up), and only writers append.
    nodes: RwLock<Vec<TNode>>,
    /// Hash-consing map, sharded by node hash.
    intern: Vec<RwLock<HashMap<TNode, TypeId>>>,
    /// `nrm⁺` memo, sharded by id.
    pos: Vec<RwLock<HashMap<TypeId, TypeId>>>,
    /// `nrm⁻` memo, sharded by id.
    neg: Vec<RwLock<HashMap<TypeId, TypeId>>>,
    counters: Counters,
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedStore")
            .field("nodes", &self.nodes.read().len())
            .finish()
    }
}

impl Default for SharedStore {
    fn default() -> SharedStore {
        SharedStore::new()
    }
}

fn shard_table() -> Vec<RwLock<HashMap<TNode, TypeId>>> {
    (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect()
}

fn memo_table() -> Vec<RwLock<HashMap<TypeId, TypeId>>> {
    (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect()
}

impl SharedStore {
    pub fn new() -> SharedStore {
        SharedStore {
            nodes: RwLock::new(Vec::new()),
            intern: shard_table(),
            pos: memo_table(),
            neg: memo_table(),
            counters: Counters::default(),
        }
    }

    /// Convenience: a fresh store behind an [`Arc`], ready for
    /// [`SharedStore::worker`].
    pub fn new_arc() -> Arc<SharedStore> {
        Arc::new(SharedStore::new())
    }

    /// Attaches a new per-thread worker handle.
    pub fn worker(self: &Arc<Self>) -> WorkerStore {
        self.counters.workers.fetch_add(1, Ordering::Relaxed);
        WorkerStore {
            shared: Arc::clone(self),
            local: TypeStore::new(),
            delta_pos: Vec::new(),
            delta_neg: Vec::new(),
            local_hits: 0,
            shared_hits: 0,
            misses: 0,
        }
    }

    /// Distinct nodes interned so far (across all workers).
    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the store-wide statistics.
    pub fn stats(&self) -> StoreStats {
        let c = &self.counters;
        StoreStats {
            nodes: self.len() as u64,
            nrm_hits: c.nrm_local_hits.load(Ordering::Relaxed)
                + c.nrm_shared_hits.load(Ordering::Relaxed),
            nrm_shared_hits: c.nrm_shared_hits.load(Ordering::Relaxed),
            nrm_misses: c.nrm_misses.load(Ordering::Relaxed),
            publishes: c.publishes.load(Ordering::Relaxed),
            workers: c.workers.load(Ordering::Relaxed),
        }
    }

    fn node_shard(node: &TNode) -> usize {
        let mut h = DefaultHasher::new();
        node.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    fn id_shard(id: TypeId) -> usize {
        id.index() % SHARDS
    }

    /// Hash-conses `node` globally. Fast path: one shard read lock.
    /// Slow path (new node): arena write lock, then shard write lock,
    /// re-checking for a racing intern of the same node.
    fn intern_node(&self, node: &TNode) -> TypeId {
        let sh = Self::node_shard(node);
        if let Some(&id) = self.intern[sh].read().get(node) {
            return id;
        }
        // Lock order everywhere: arena before intern shard.
        let mut nodes = self.nodes.write();
        let mut map = self.intern[sh].write();
        if let Some(&id) = map.get(node) {
            return id;
        }
        let id = TypeId::from_index(nodes.len());
        nodes.push(node.clone());
        map.insert(node.clone(), id);
        id
    }

    fn memo_get(table: &[RwLock<HashMap<TypeId, TypeId>>], id: TypeId) -> Option<TypeId> {
        table[Self::id_shard(id)].read().get(&id).copied()
    }

    fn memo_merge(table: &[RwLock<HashMap<TypeId, TypeId>>], delta: &[(TypeId, TypeId)]) {
        // Group by shard so each lock is taken once per publish.
        for (sh, shard) in table.iter().enumerate() {
            let mut batch = delta
                .iter()
                .filter(|(id, _)| Self::id_shard(*id) == sh)
                .peekable();
            if batch.peek().is_none() {
                continue;
            }
            let mut map = shard.write();
            for &(id, nf) in batch {
                map.insert(id, nf);
            }
        }
    }
}

/// A per-thread (or per-worker) handle onto a [`SharedStore`].
///
/// Implements the same id-level operations as [`TypeStore`] — `intern`,
/// `nrm`, `equivalent_ids`, substitution, extraction — with identical
/// semantics (both run the [`StoreOps`] algorithms). Warm queries touch
/// only the local mirror; cold ones consult the shared shards and
/// publish what they learn.
pub struct WorkerStore {
    shared: Arc<SharedStore>,
    /// Prefix-consistent mirror of the shared arena; also holds the
    /// local memo caches, binder-name hints and the extraction memo.
    local: TypeStore,
    /// Memo entries computed here and not yet merged into the shared maps.
    delta_pos: Vec<(TypeId, TypeId)>,
    delta_neg: Vec<(TypeId, TypeId)>,
    local_hits: u64,
    shared_hits: u64,
    misses: u64,
}

impl std::fmt::Debug for WorkerStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerStore")
            .field("mirrored", &self.local.len())
            .field(
                "unpublished",
                &(self.delta_pos.len() + self.delta_neg.len()),
            )
            .finish()
    }
}

impl WorkerStore {
    /// The shared store this worker belongs to.
    pub fn shared(&self) -> &Arc<SharedStore> {
        &self.shared
    }

    /// Read-only view of the local mirror, for code that takes a plain
    /// [`TypeStore`] (e.g. id-level kind checking). Every id this worker
    /// has produced or looked at is present in the mirror.
    pub fn local(&self) -> &TypeStore {
        &self.local
    }

    /// Extends the local mirror to cover `id`. Copying in arena order
    /// reproduces the shared indices exactly (see module docs).
    fn sync_to(&mut self, id: TypeId) {
        if self.local.len() > id.index() {
            return;
        }
        let nodes = self.shared.nodes.read();
        for i in self.local.len()..=id.index() {
            let got = self.local.mk(nodes[i].clone());
            debug_assert_eq!(got.index(), i, "mirror diverged from shared arena");
        }
    }

    /// Merges this worker's memo deltas into the shared shards and folds
    /// its hit/miss counters into the shared statistics. Cheap when
    /// there is nothing to publish.
    pub fn publish(&mut self) {
        if !self.delta_pos.is_empty() {
            SharedStore::memo_merge(&self.shared.pos, &self.delta_pos);
            self.delta_pos.clear();
        }
        if !self.delta_neg.is_empty() {
            SharedStore::memo_merge(&self.shared.neg, &self.delta_neg);
            self.delta_neg.clear();
        }
        let c = &self.shared.counters;
        c.nrm_local_hits
            .fetch_add(self.local_hits, Ordering::Relaxed);
        c.nrm_shared_hits
            .fetch_add(self.shared_hits, Ordering::Relaxed);
        c.nrm_misses.fetch_add(self.misses, Ordering::Relaxed);
        c.publishes.fetch_add(1, Ordering::Relaxed);
        self.local_hits = 0;
        self.shared_hits = 0;
        self.misses = 0;
    }

    fn maybe_publish(&mut self) {
        if self.delta_pos.len() + self.delta_neg.len() >= PUBLISH_THRESHOLD {
            self.publish();
        }
    }

    // ---------------------------------------------------- mirrored API

    /// Interns a boundary [`Type`]; the id is valid across all workers
    /// of this [`SharedStore`].
    pub fn intern(&mut self, t: &Type) -> TypeId {
        StoreOps::intern(self, t)
    }

    /// Memoized `nrm⁺` at the id level (local mirror → shared shards →
    /// compute and record).
    pub fn nrm(&mut self, id: TypeId) -> TypeId {
        StoreOps::nrm(self, id)
    }

    /// Memoized `nrm⁻` at the id level.
    pub fn nrm_neg(&mut self, id: TypeId) -> TypeId {
        StoreOps::nrm_neg(self, id)
    }

    /// Decides `T ≡_A U` as id equality of memoized normal forms.
    pub fn equivalent_ids(&mut self, a: TypeId, b: TypeId) -> bool {
        StoreOps::equivalent_ids(self, a, b)
    }

    /// True when `id` is already recorded (locally) as its own normal
    /// form — the no-traversal fast path.
    pub fn is_normalized(&mut self, id: TypeId) -> bool {
        StoreOps::memo_pos_entry(self, id) == Some(id)
    }

    /// Simultaneous, capture-free substitution of ids for free variables.
    pub fn subst_free(&mut self, id: TypeId, map: &HashMap<Symbol, TypeId>) -> TypeId {
        StoreOps::subst_free(self, id, map)
    }

    /// β-instantiation of the outermost `∀` binder of `forall_id`.
    pub fn instantiate(&mut self, forall_id: TypeId, arg: TypeId) -> Option<TypeId> {
        StoreOps::instantiate(self, forall_id, arg)
    }

    /// Converts an id back to a boundary [`Type`] (binder names from
    /// this worker's first-intern hints where capture-free).
    pub fn extract(&mut self, id: TypeId) -> Type {
        self.sync_to(id);
        self.local.extract(id)
    }

    /// [`WorkerStore::extract`] with the mirror's per-id memo.
    pub fn extract_cached(&mut self, id: TypeId) -> Type {
        self.sync_to(id);
        self.local.extract_cached(id)
    }

    /// Tree-node count of the type behind `id`.
    pub fn node_count(&mut self, id: TypeId) -> u64 {
        self.sync_to(id);
        self.local.node_count(id)
    }
}

impl StoreOps for WorkerStore {
    fn node_owned(&mut self, id: TypeId) -> TNode {
        self.sync_to(id);
        self.local.node(id).clone()
    }

    fn mk_node(&mut self, node: TNode) -> TypeId {
        if let Some(id) = self.local.lookup_node(&node) {
            return id;
        }
        let id = self.shared.intern_node(&node);
        self.sync_to(id);
        id
    }

    fn binders_needed(&mut self, id: TypeId) -> u32 {
        self.sync_to(id);
        StoreOps::binders_needed(&mut self.local, id)
    }

    fn memo_pos_entry(&mut self, id: TypeId) -> Option<TypeId> {
        self.sync_to(id);
        if let Some(n) = StoreOps::memo_pos_entry(&mut self.local, id) {
            self.local_hits += 1;
            return Some(n);
        }
        if let Some(n) = SharedStore::memo_get(&self.shared.pos, id) {
            self.shared_hits += 1;
            self.sync_to(n);
            StoreOps::memo_pos_record(&mut self.local, id, n);
            return Some(n);
        }
        self.misses += 1;
        None
    }

    fn memo_pos_record(&mut self, id: TypeId, nf: TypeId) {
        self.sync_to(id);
        self.sync_to(nf);
        StoreOps::memo_pos_record(&mut self.local, id, nf);
        self.delta_pos.push((id, nf));
        self.maybe_publish();
    }

    fn memo_neg_entry(&mut self, id: TypeId) -> Option<TypeId> {
        self.sync_to(id);
        if let Some(n) = StoreOps::memo_neg_entry(&mut self.local, id) {
            self.local_hits += 1;
            return Some(n);
        }
        if let Some(n) = SharedStore::memo_get(&self.shared.neg, id) {
            self.shared_hits += 1;
            self.sync_to(n);
            StoreOps::memo_neg_record(&mut self.local, id, n);
            return Some(n);
        }
        self.misses += 1;
        None
    }

    fn memo_neg_record(&mut self, id: TypeId, nf: TypeId) {
        self.sync_to(id);
        self.sync_to(nf);
        StoreOps::memo_neg_record(&mut self.local, id, nf);
        self.delta_neg.push((id, nf));
        self.maybe_publish();
    }

    fn note_binder_hint(&mut self, id: TypeId, name: Symbol) {
        // Hints are display-only and stay worker-local: each worker
        // shows the names *it* first interned, exactly like the previous
        // thread-local store.
        self.local.record_binder_hint(id, name);
    }
}

impl Drop for WorkerStore {
    fn drop(&mut self) {
        self.publish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::Kind;
    use crate::normalize::nrm_pos;

    fn samples() -> Vec<Type> {
        vec![
            Type::dual(Type::input(Type::neg(Type::int()), Type::var("a"))),
            Type::dual(Type::dual(Type::output(Type::int(), Type::EndIn))),
            Type::proto("ShPQ", vec![Type::neg(Type::neg(Type::neg(Type::int())))]),
            Type::forall(
                "s",
                Kind::Session,
                Type::arrow(
                    Type::dual(Type::output(Type::int(), Type::var("s"))),
                    Type::var("s"),
                ),
            ),
            Type::output(
                Type::proto("ShRep", vec![Type::int()]),
                Type::input(Type::bool(), Type::EndOut),
            ),
        ]
    }

    #[test]
    fn workers_agree_on_ids_and_verdicts() {
        let shared = SharedStore::new_arc();
        let mut w1 = shared.worker();
        let mut w2 = shared.worker();
        for t in samples() {
            let a = w1.intern(&t);
            let b = w2.intern(&t);
            assert_eq!(a, b, "workers disagree on the id of {t}");
            assert_eq!(w1.nrm(a), w2.nrm(b), "workers disagree on nrm of {t}");
        }
    }

    #[test]
    fn worker_nrm_agrees_with_tree_and_private_store() {
        let shared = SharedStore::new_arc();
        let mut w = shared.worker();
        let mut private = TypeStore::new();
        for t in samples() {
            let wid = w.intern(&t);
            let wn = w.nrm(wid);
            let via_tree = w.intern(&nrm_pos(&t));
            assert_eq!(wn, via_tree, "worker nrm disagrees with tree nrm on {t}");
            let pid = private.intern(&t);
            let pn = private.nrm(pid);
            assert!(
                w.extract(wn).alpha_eq(&private.extract(pn)),
                "worker and private normal forms differ on {t}"
            );
        }
    }

    #[test]
    fn published_memos_warm_other_workers() {
        let shared = SharedStore::new_arc();
        let t = Type::dual(Type::output(Type::int(), Type::var("warmShared")));
        let mut w1 = shared.worker();
        let id = w1.intern(&t);
        let n = w1.nrm(id);
        w1.publish();
        // A brand-new worker sees the published memo: its first nrm is a
        // shared-shard hit, not a recomputation.
        let mut w2 = shared.worker();
        let before = shared.stats();
        assert_eq!(w2.nrm(id), n);
        w2.publish();
        let after = shared.stats();
        assert!(after.nrm_shared_hits > before.nrm_shared_hits);
    }

    #[test]
    fn extraction_round_trips_through_a_worker() {
        let shared = SharedStore::new_arc();
        let mut w = shared.worker();
        for t in samples() {
            let id = w.intern(&t);
            let back = w.extract(id);
            assert!(t.alpha_eq(&back), "{t} vs {back}");
            assert_eq!(w.intern(&back), id);
        }
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let shared = SharedStore::new_arc();
        let mut w = shared.worker();
        let t = Type::dual(Type::input(Type::int(), Type::EndIn));
        let u = Type::output(Type::int(), Type::dual(Type::EndIn));
        let (a, b) = (w.intern(&t), w.intern(&u));
        assert!(w.equivalent_ids(a, b));
        assert!(w.equivalent_ids(a, b), "second query must stay warm");
        w.publish();
        let stats = shared.stats();
        assert!(stats.nodes > 0);
        assert!(stats.nrm_misses > 0, "first contact computes");
        assert!(stats.nrm_hits > 0, "second contact hits the memo");
        assert!(stats.nrm_hit_rate() > 0.0 && stats.nrm_hit_rate() < 1.0);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let shared = SharedStore::new_arc();
        let samples = samples();
        let ids: Vec<Vec<TypeId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let shared = &shared;
                    let samples = &samples;
                    scope.spawn(move || {
                        let mut w = shared.worker();
                        samples
                            .iter()
                            .map(|t| {
                                let id = w.intern(t);
                                let n = w.nrm(id);
                                assert!(w.equivalent_ids(id, n));
                                id
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for per_thread in &ids[1..] {
            assert_eq!(per_thread, &ids[0], "threads must agree on every id");
        }
    }
}
