//! Capture-avoiding substitution of types for type variables.
//!
//! Two implementations coexist: the boundary-level [`Subst::apply`] on
//! [`Type`] trees (renames binders to avoid capture), and the id-level
//! [`Subst::apply_interned`] /
//! [`TypeStore::subst_free`](crate::store::TypeStore::subst_free) where
//! capture is impossible by construction (binders are nameless). Both
//! agree up to α-equivalence.

use crate::store::{StoreOps, TypeId};
use crate::symbol::Symbol;
use crate::types::Type;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A simultaneous substitution `[T̄/ᾱ]`.
#[derive(Clone, Debug, Default)]
pub struct Subst {
    map: HashMap<Symbol, Type>,
    /// Free variables of the range, cached for capture checks.
    range_fv: HashSet<Symbol>,
}

impl Subst {
    pub fn new() -> Subst {
        Subst::default()
    }

    /// The singleton substitution `[ty/var]`.
    pub fn single(var: Symbol, ty: Type) -> Subst {
        let mut s = Subst::new();
        s.insert(var, ty);
        s
    }

    /// Builds a simultaneous substitution from parallel parameter/argument
    /// lists, as used when instantiating a protocol declaration `ρ ᾱ` with
    /// arguments `Ū`.
    ///
    /// # Panics
    /// Panics if the lists have different lengths (arity errors are caught
    /// during kind checking before substitution happens).
    pub fn parallel(params: &[Symbol], args: &[Type]) -> Subst {
        assert_eq!(
            params.len(),
            args.len(),
            "substitution arity mismatch: {} parameters vs {} arguments",
            params.len(),
            args.len()
        );
        let mut s = Subst::new();
        for (p, a) in params.iter().zip(args) {
            s.insert(*p, a.clone());
        }
        s
    }

    pub fn insert(&mut self, var: Symbol, ty: Type) {
        self.range_fv.extend(ty.free_vars());
        self.map.insert(var, ty);
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Applies the substitution, renaming binders when they would capture a
    /// free variable of the range.
    pub fn apply(&self, ty: &Type) -> Type {
        if self.is_empty() {
            return ty.clone();
        }
        self.go(ty)
    }

    /// Applies the substitution at the id level: the range is interned
    /// into `store` and free occurrences are replaced without any
    /// renaming (nameless binders cannot capture). Agrees with
    /// [`Subst::apply`] up to α-equivalence — i.e. produces the id that
    /// `apply`'s result would intern to. Generic over [`StoreOps`], so it
    /// runs against both a private [`TypeStore`](crate::store::TypeStore) and a concurrent
    /// [`WorkerStore`](crate::shared::WorkerStore).
    pub fn apply_interned<S: StoreOps>(&self, store: &mut S, id: TypeId) -> TypeId {
        if self.is_empty() {
            return id;
        }
        let map: HashMap<Symbol, TypeId> = self
            .map
            .iter()
            .map(|(v, t)| (*v, store.intern(t)))
            .collect();
        store.subst_free(id, &map)
    }

    fn go(&self, ty: &Type) -> Type {
        match ty {
            Type::Unit | Type::Base(_) | Type::EndIn | Type::EndOut => ty.clone(),
            Type::Var(v) => match self.map.get(v) {
                Some(t) => t.clone(),
                None => ty.clone(),
            },
            Type::Arrow(a, b) => Type::Arrow(Arc::new(self.go(a)), Arc::new(self.go(b))),
            Type::Pair(a, b) => Type::Pair(Arc::new(self.go(a)), Arc::new(self.go(b))),
            Type::In(a, b) => Type::In(Arc::new(self.go(a)), Arc::new(self.go(b))),
            Type::Out(a, b) => Type::Out(Arc::new(self.go(a)), Arc::new(self.go(b))),
            Type::Dual(t) => Type::Dual(Arc::new(self.go(t))),
            Type::Neg(t) => Type::Neg(Arc::new(self.go(t))),
            Type::Proto(name, args) => {
                Type::Proto(*name, args.iter().map(|a| self.go(a)).collect())
            }
            Type::Data(name, args) => Type::Data(*name, args.iter().map(|a| self.go(a)).collect()),
            Type::Forall(v, k, body) => {
                if self.map.contains_key(v) {
                    // The binder shadows a substituted variable: stop
                    // substituting it inside, but the remaining entries must
                    // still be applied. Restrict the substitution.
                    let mut restricted = self.clone();
                    restricted.map.remove(v);
                    if restricted.map.is_empty() {
                        return ty.clone();
                    }
                    return restricted.go_binder(*v, *k, body);
                }
                self.go_binder(*v, *k, body)
            }
        }
    }

    fn go_binder(&self, v: Symbol, k: crate::kind::Kind, body: &Type) -> Type {
        if self.range_fv.contains(&v) {
            // Capture: rename the binder first.
            let fresh = Symbol::fresh(v.base_name());
            let renamed = Subst::single(v, Type::Var(fresh)).apply(body);
            Type::Forall(fresh, k, Arc::new(self.go(&renamed)))
        } else {
            Type::Forall(v, k, Arc::new(self.go(body)))
        }
    }
}

/// Convenience wrapper: `ty[replacement/var]`.
pub fn subst_type(ty: &Type, var: Symbol, replacement: &Type) -> Type {
    Subst::single(var, replacement.clone()).apply(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::Kind;

    fn v(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn substitutes_free_occurrences() {
        let t = Type::arrow(Type::var("a"), Type::var("b"));
        let r = subst_type(&t, v("a"), &Type::int());
        assert_eq!(r.to_string(), "Int -> b");
    }

    #[test]
    fn binder_shadows() {
        let t = Type::forall("a", Kind::Session, Type::var("a"));
        let r = subst_type(&t, v("a"), &Type::int());
        assert!(r.alpha_eq(&t));
    }

    #[test]
    fn avoids_capture() {
        // (∀b. a -> b)[b/a]  must rename the binder.
        let t = Type::forall(
            "b",
            Kind::Session,
            Type::arrow(Type::var("a"), Type::var("b")),
        );
        let r = subst_type(&t, v("a"), &Type::var("b"));
        let expected = Type::forall(
            "c",
            Kind::Session,
            Type::arrow(Type::var("b"), Type::var("c")),
        );
        assert!(r.alpha_eq(&expected), "got {r}");
    }

    #[test]
    fn parallel_substitution_is_simultaneous() {
        // [b/a, a/b] swaps variables rather than chaining.
        let t = Type::pair(Type::var("a"), Type::var("b"));
        let s = Subst::parallel(&[v("a"), v("b")], &[Type::var("b"), Type::var("a")]);
        let r = s.apply(&t);
        assert_eq!(r.to_string(), "(b, a)");
    }

    #[test]
    fn apply_interned_agrees_with_tree_apply() {
        use crate::store::TypeStore;
        let mut store = TypeStore::new();
        // Includes the capture case: tree apply renames, id apply cannot
        // capture; both land on the same α-class, hence the same id.
        let cases = vec![
            (
                Type::arrow(Type::var("a"), Type::var("b")),
                Subst::single(v("a"), Type::int()),
            ),
            (
                Type::forall(
                    "b",
                    Kind::Session,
                    Type::arrow(Type::var("a"), Type::var("b")),
                ),
                Subst::single(v("a"), Type::var("b")),
            ),
            (
                Type::pair(Type::var("a"), Type::var("b")),
                Subst::parallel(&[v("a"), v("b")], &[Type::var("b"), Type::var("a")]),
            ),
        ];
        for (t, s) in cases {
            let id = store.intern(&t);
            let via_ids = s.apply_interned(&mut store, id);
            let via_tree = s.apply(&t);
            assert_eq!(via_ids, store.intern(&via_tree), "mismatch on {t}");
        }
    }

    #[test]
    fn shadowed_binder_still_applies_other_entries() {
        // (∀a. a ⊗ b)[Int/a, Bool/b]: a is shadowed, b is substituted.
        let t = Type::forall("a", Kind::Value, Type::pair(Type::var("a"), Type::var("b")));
        let s = Subst::parallel(&[v("a"), v("b")], &[Type::int(), Type::bool()]);
        let r = s.apply(&t);
        let expected = Type::forall("a", Kind::Value, Type::pair(Type::var("a"), Type::bool()));
        assert!(r.alpha_eq(&expected), "got {r}");
    }
}
