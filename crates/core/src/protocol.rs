//! Protocol and datatype declarations and the global declaration
//! environment.
//!
//! An algebraic protocol declaration (paper Section 3)
//!
//! ```text
//! protocol ρ ᾱ = { Cᵢ T̄ᵢ }ᵢ∈I
//! ```
//!
//! introduces the protocol type constructor `ρ` of kind `P̄ → P` together
//! with globally unique selector tags `Cᵢ`, each guarding a *sequence* of
//! subprotocols `T̄ᵢ` to be processed in order. A `data` declaration has the
//! same shape but lives in kind `T` and classifies run-time values.

use crate::kind::Kind;
use crate::symbol::Symbol;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// One alternative of a protocol or datatype declaration: a tag and its
/// argument types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ctor {
    pub tag: Symbol,
    pub args: Vec<Type>,
}

impl Ctor {
    pub fn new(tag: impl Into<Symbol>, args: Vec<Type>) -> Ctor {
        Ctor {
            tag: tag.into(),
            args,
        }
    }
}

/// `protocol ρ ᾱ = C₁ T̄₁ | … | Cₙ T̄ₙ`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolDecl {
    pub name: Symbol,
    pub params: Vec<Symbol>,
    pub ctors: Vec<Ctor>,
}

/// `data D ᾱ = C₁ T̄₁ | … | Cₙ T̄ₙ` (implementation extension; paper
/// Section 3 uses datatypes in examples without formalizing them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataDecl {
    pub name: Symbol,
    pub params: Vec<Symbol>,
    pub ctors: Vec<Ctor>,
}

/// Where a constructor tag was declared.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TagOwner {
    Protocol(Symbol),
    Data(Symbol),
}

/// Resolved information about a constructor tag.
#[derive(Clone, Debug)]
pub struct TagInfo {
    pub owner: TagOwner,
    /// Index of this constructor within its declaration.
    pub index: usize,
}

/// Errors raised while building or validating a [`Declarations`]
/// environment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeclError {
    DuplicateTypeName(Symbol),
    DuplicateTag {
        tag: Symbol,
        first: TagOwner,
    },
    DuplicateParam {
        decl: Symbol,
        param: Symbol,
    },
    /// A constructor argument failed kind checking.
    IllKindedArg {
        decl: Symbol,
        tag: Symbol,
        arg: Type,
        reason: String,
    },
}

impl fmt::Display for DeclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclError::DuplicateTypeName(n) => write!(f, "duplicate type name {n}"),
            DeclError::DuplicateTag { tag, .. } => {
                write!(
                    f,
                    "constructor tag {tag} declared more than once (tags are globally unique)"
                )
            }
            DeclError::DuplicateParam { decl, param } => {
                write!(f, "duplicate parameter {param} in declaration of {decl}")
            }
            DeclError::IllKindedArg {
                decl,
                tag,
                arg,
                reason,
            } => write!(
                f,
                "ill-kinded argument {arg} of constructor {tag} in {decl}: {reason}"
            ),
        }
    }
}

impl std::error::Error for DeclError {}

/// The global set of protocol and datatype declarations, with a resolved
/// tag table. This is the "implicit set of protocol declarations" that
/// parameterizes the typing rules (paper Section 4).
#[derive(Clone, Debug, Default)]
pub struct Declarations {
    protocols: HashMap<Symbol, ProtocolDecl>,
    datas: HashMap<Symbol, DataDecl>,
    tags: HashMap<Symbol, TagInfo>,
    /// Declaration order, for deterministic iteration.
    order: Vec<Symbol>,
}

impl Declarations {
    pub fn new() -> Declarations {
        Declarations::default()
    }

    /// Registers a protocol declaration. Constructor arguments are *not*
    /// kind-checked here — call [`Declarations::validate`] once all mutually
    /// recursive declarations are present (paper footnote 6).
    pub fn add_protocol(&mut self, decl: ProtocolDecl) -> Result<(), DeclError> {
        self.check_name_free(decl.name)?;
        self.check_params(decl.name, &decl.params)?;
        for (ix, c) in decl.ctors.iter().enumerate() {
            self.claim_tag(c.tag, TagOwner::Protocol(decl.name), ix)?;
        }
        self.order.push(decl.name);
        self.protocols.insert(decl.name, decl);
        Ok(())
    }

    /// Registers a datatype declaration.
    pub fn add_data(&mut self, decl: DataDecl) -> Result<(), DeclError> {
        self.check_name_free(decl.name)?;
        self.check_params(decl.name, &decl.params)?;
        for (ix, c) in decl.ctors.iter().enumerate() {
            self.claim_tag(c.tag, TagOwner::Data(decl.name), ix)?;
        }
        self.order.push(decl.name);
        self.datas.insert(decl.name, decl);
        Ok(())
    }

    fn check_name_free(&self, name: Symbol) -> Result<(), DeclError> {
        if self.protocols.contains_key(&name) || self.datas.contains_key(&name) {
            Err(DeclError::DuplicateTypeName(name))
        } else {
            Ok(())
        }
    }

    fn check_params(&self, decl: Symbol, params: &[Symbol]) -> Result<(), DeclError> {
        for (i, p) in params.iter().enumerate() {
            if params[..i].contains(p) {
                return Err(DeclError::DuplicateParam { decl, param: *p });
            }
        }
        Ok(())
    }

    fn claim_tag(&mut self, tag: Symbol, owner: TagOwner, index: usize) -> Result<(), DeclError> {
        if let Some(prev) = self.tags.get(&tag) {
            return Err(DeclError::DuplicateTag {
                tag,
                first: prev.owner,
            });
        }
        self.tags.insert(tag, TagInfo { owner, index });
        Ok(())
    }

    pub fn protocol(&self, name: Symbol) -> Option<&ProtocolDecl> {
        self.protocols.get(&name)
    }

    pub fn data(&self, name: Symbol) -> Option<&DataDecl> {
        self.datas.get(&name)
    }

    pub fn tag(&self, tag: Symbol) -> Option<&TagInfo> {
        self.tags.get(&tag)
    }

    /// The protocol that declares `tag`, if any.
    pub fn protocol_of_tag(&self, tag: Symbol) -> Option<(&ProtocolDecl, usize)> {
        match self.tags.get(&tag) {
            Some(TagInfo {
                owner: TagOwner::Protocol(p),
                index,
            }) => Some((&self.protocols[p], *index)),
            _ => None,
        }
    }

    /// The datatype that declares `tag`, if any.
    pub fn data_of_tag(&self, tag: Symbol) -> Option<(&DataDecl, usize)> {
        match self.tags.get(&tag) {
            Some(TagInfo {
                owner: TagOwner::Data(d),
                index,
            }) => Some((&self.datas[d], *index)),
            _ => None,
        }
    }

    pub fn protocols(&self) -> impl Iterator<Item = &ProtocolDecl> {
        self.order.iter().filter_map(|n| self.protocols.get(n))
    }

    pub fn datas(&self) -> impl Iterator<Item = &DataDecl> {
        self.order.iter().filter_map(|n| self.datas.get(n))
    }

    /// Kind-checks every constructor argument of every declaration,
    /// implementing the protocol formation rule of Section 3:
    ///
    /// ```text
    /// protocol ρ ᾱ = {Cᵢ T̄ᵢ}   Δ, ρ̄:P̄→P, ᾱ:P ⊢ Tᵢⱼ ⇐ P
    /// ───────────────────────────────────────────────────
    ///              Δ ⊢ ρ ⇒ P̄ → P
    /// ```
    ///
    /// All (mutually recursive) declarations are in scope while each is
    /// checked. Datatype constructor arguments are checked against kind `T`.
    pub fn validate(&self) -> Result<(), DeclError> {
        use crate::kindcheck::KindCtx;
        for p in self.protocols.values() {
            let mut ctx = KindCtx::new(self);
            for a in &p.params {
                ctx.push_var(*a, Kind::Protocol);
            }
            for c in &p.ctors {
                for arg in &c.args {
                    ctx.check(arg, Kind::Protocol)
                        .map_err(|e| DeclError::IllKindedArg {
                            decl: p.name,
                            tag: c.tag,
                            arg: arg.clone(),
                            reason: e.to_string(),
                        })?;
                }
            }
        }
        for d in self.datas.values() {
            let mut ctx = KindCtx::new(self);
            for a in &d.params {
                ctx.push_var(*a, Kind::Value);
            }
            for c in &d.ctors {
                for arg in &c.args {
                    ctx.check(arg, Kind::Value)
                        .map_err(|e| DeclError::IllKindedArg {
                            decl: d.name,
                            tag: c.tag,
                            arg: arg.clone(),
                            reason: e.to_string(),
                        })?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_decl() -> ProtocolDecl {
        // protocol Stream a = Next a (Stream a)
        ProtocolDecl {
            name: Symbol::intern("Stream"),
            params: vec![Symbol::intern("a")],
            ctors: vec![Ctor::new(
                "Next",
                vec![Type::var("a"), Type::proto("Stream", vec![Type::var("a")])],
            )],
        }
    }

    #[test]
    fn registers_and_resolves_tags() {
        let mut decls = Declarations::new();
        decls.add_protocol(stream_decl()).unwrap();
        decls.validate().unwrap();
        let (p, ix) = decls.protocol_of_tag(Symbol::intern("Next")).unwrap();
        assert_eq!(p.name, Symbol::intern("Stream"));
        assert_eq!(ix, 0);
    }

    #[test]
    fn rejects_duplicate_tags() {
        let mut decls = Declarations::new();
        decls.add_protocol(stream_decl()).unwrap();
        let clash = ProtocolDecl {
            name: Symbol::intern("Other"),
            params: vec![],
            ctors: vec![Ctor::new("Next", vec![])],
        };
        assert!(matches!(
            decls.add_protocol(clash),
            Err(DeclError::DuplicateTag { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut decls = Declarations::new();
        decls.add_protocol(stream_decl()).unwrap();
        let mut again = stream_decl();
        again.ctors = vec![Ctor::new("Next2", vec![])];
        assert!(matches!(
            decls.add_protocol(again),
            Err(DeclError::DuplicateTypeName(_))
        ));
    }

    #[test]
    fn validates_mutual_recursion() {
        // protocol Flip = FlipC -Int Flop ; protocol Flop = FlopC Int Flip
        let mut decls = Declarations::new();
        decls
            .add_protocol(ProtocolDecl {
                name: Symbol::intern("Flip"),
                params: vec![],
                ctors: vec![Ctor::new(
                    "FlipC",
                    vec![Type::neg(Type::int()), Type::proto("Flop", vec![])],
                )],
            })
            .unwrap();
        decls
            .add_protocol(ProtocolDecl {
                name: Symbol::intern("Flop"),
                params: vec![],
                ctors: vec![Ctor::new(
                    "FlopC",
                    vec![Type::int(), Type::proto("Flip", vec![])],
                )],
            })
            .unwrap();
        decls.validate().unwrap();
    }

    #[test]
    fn rejects_unbound_protocol_reference() {
        let mut decls = Declarations::new();
        decls
            .add_protocol(ProtocolDecl {
                name: Symbol::intern("Dangling"),
                params: vec![],
                ctors: vec![Ctor::new("DangC", vec![Type::proto("Nowhere", vec![])])],
            })
            .unwrap();
        assert!(matches!(
            decls.validate(),
            Err(DeclError::IllKindedArg { .. })
        ));
    }
}
