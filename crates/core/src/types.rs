//! The AlgST type language (paper Section 3, Fig. 1 grammar).
//!
//! ```text
//! S,T,U ::= Unit | T -> U | T ⊗ U | ∀α:κ.T | α          functional types
//!         | ?T.S | !T.S | End? | End! | Dual S           session types
//!         | ρ T̄ | -T                                     protocol types
//! ```
//!
//! As in the paper's artifact (Section 5), the implementation extends the
//! formal grammar with base types (`Int`, `Bool`, `Char`, `String`) and
//! nominal datatypes `D T̄` declared with `data`.

use crate::kind::Kind;
use crate::symbol::Symbol;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Built-in base types (implementation extension; the formal system has
/// only `Unit`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum BaseType {
    Int,
    Bool,
    Char,
    Str,
}

impl BaseType {
    pub fn name(self) -> &'static str {
        match self {
            BaseType::Int => "Int",
            BaseType::Bool => "Bool",
            BaseType::Char => "Char",
            BaseType::Str => "String",
        }
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An AlgST type.
///
/// Types are immutable trees with shared subterms ([`Arc`]), so cloning is
/// cheap. Construct them with the helper constructors ([`Type::arrow`],
/// [`Type::input`], …) which take care of the boxing.
///
/// This is the *boundary* representation: what the parser produces and
/// what error messages display. The equivalence/normalization hot path
/// and the typing contexts work on interned
/// [`TypeId`](crate::store::TypeId)s instead — see [`crate::store`] for
/// the hash-consed interior representation and the lossless (up to
/// α-equivalence) conversions between the two.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// `Unit`
    Unit,
    /// `Int`, `Bool`, `Char`, `String` (extension).
    Base(BaseType),
    /// `T -> U` (linear function).
    Arrow(Arc<Type>, Arc<Type>),
    /// `T ⊗ U` (linear pair).
    Pair(Arc<Type>, Arc<Type>),
    /// `∀α:κ. T`
    Forall(Symbol, Kind, Arc<Type>),
    /// Type variable `α`.
    Var(Symbol),
    /// `?T.S` — receive a `T`, continue as `S`.
    In(Arc<Type>, Arc<Type>),
    /// `!T.S` — send a `T`, continue as `S`.
    Out(Arc<Type>, Arc<Type>),
    /// `End?` — passive termination (wait).
    EndIn,
    /// `End!` — active termination (terminate).
    EndOut,
    /// `Dual S` — swaps the direction of the spine of `S` (outside-in).
    Dual(Arc<Type>),
    /// `ρ T̄` — a declared protocol applied to protocol arguments.
    Proto(Symbol, Vec<Type>),
    /// `-T` — reverses the direction of the protocol `T` (inside-out).
    Neg(Arc<Type>),
    /// `D T̄` — a declared datatype applied to type arguments (extension).
    Data(Symbol, Vec<Type>),
}

impl Type {
    pub fn arrow(dom: Type, cod: Type) -> Type {
        Type::Arrow(Arc::new(dom), Arc::new(cod))
    }
    pub fn pair(a: Type, b: Type) -> Type {
        Type::Pair(Arc::new(a), Arc::new(b))
    }
    pub fn forall(var: impl Into<Symbol>, kind: Kind, body: Type) -> Type {
        Type::Forall(var.into(), kind, Arc::new(body))
    }
    pub fn var(name: impl Into<Symbol>) -> Type {
        Type::Var(name.into())
    }
    /// `?T.S`
    pub fn input(payload: Type, cont: Type) -> Type {
        Type::In(Arc::new(payload), Arc::new(cont))
    }
    /// `!T.S`
    pub fn output(payload: Type, cont: Type) -> Type {
        Type::Out(Arc::new(payload), Arc::new(cont))
    }
    pub fn dual(s: Type) -> Type {
        Type::Dual(Arc::new(s))
    }
    pub fn proto(name: impl Into<Symbol>, args: Vec<Type>) -> Type {
        Type::Proto(name.into(), args)
    }
    /// `-T`. Note: this is the *syntactic* constructor; the smart
    /// direction operator that collapses double negation lives in
    /// [`crate::normalize::dir_neg`].
    // Named for the paper's `-T`; an `ops::Neg` impl would take `self`
    // rather than build from an owned payload, so keep the constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(t: Type) -> Type {
        Type::Neg(Arc::new(t))
    }
    pub fn data(name: impl Into<Symbol>, args: Vec<Type>) -> Type {
        Type::Data(name.into(), args)
    }
    pub fn int() -> Type {
        Type::Base(BaseType::Int)
    }
    pub fn bool() -> Type {
        Type::Base(BaseType::Bool)
    }
    pub fn char() -> Type {
        Type::Base(BaseType::Char)
    }
    pub fn string() -> Type {
        Type::Base(BaseType::Str)
    }

    /// Number of AST nodes. This is the size measure used on the x-axis of
    /// the paper's Figure 10 ("Number of AlgST nodes").
    pub fn node_count(&self) -> usize {
        match self {
            Type::Unit | Type::Base(_) | Type::Var(_) | Type::EndIn | Type::EndOut => 1,
            Type::Arrow(a, b) | Type::Pair(a, b) | Type::In(a, b) | Type::Out(a, b) => {
                1 + a.node_count() + b.node_count()
            }
            Type::Forall(_, _, t) | Type::Dual(t) | Type::Neg(t) => 1 + t.node_count(),
            Type::Proto(_, args) | Type::Data(_, args) => {
                1 + args.iter().map(Type::node_count).sum::<usize>()
            }
        }
    }

    /// Free type variables.
    pub fn free_vars(&self) -> HashSet<Symbol> {
        let mut acc = HashSet::new();
        self.collect_free_vars(&mut Vec::new(), &mut acc);
        acc
    }

    fn collect_free_vars(&self, bound: &mut Vec<Symbol>, acc: &mut HashSet<Symbol>) {
        match self {
            Type::Unit | Type::Base(_) | Type::EndIn | Type::EndOut => {}
            Type::Var(v) => {
                if !bound.contains(v) {
                    acc.insert(*v);
                }
            }
            Type::Arrow(a, b) | Type::Pair(a, b) | Type::In(a, b) | Type::Out(a, b) => {
                a.collect_free_vars(bound, acc);
                b.collect_free_vars(bound, acc);
            }
            Type::Forall(v, _, t) => {
                bound.push(*v);
                t.collect_free_vars(bound, acc);
                bound.pop();
            }
            Type::Dual(t) | Type::Neg(t) => t.collect_free_vars(bound, acc),
            Type::Proto(_, args) | Type::Data(_, args) => {
                for a in args {
                    a.collect_free_vars(bound, acc);
                }
            }
        }
    }

    /// Structural α-equivalence (binders compared up to renaming).
    ///
    /// Combined with normalization this decides type equivalence
    /// ([`crate::session::Session::equivalent`]): `T ≡_A U  iff  nrm⁺(T) =α nrm⁺(U)`.
    pub fn alpha_eq(&self, other: &Type) -> bool {
        fn go(a: &Type, b: &Type, env: &mut Vec<(Symbol, Symbol)>) -> bool {
            match (a, b) {
                (Type::Unit, Type::Unit) => true,
                (Type::Base(x), Type::Base(y)) => x == y,
                (Type::EndIn, Type::EndIn) | (Type::EndOut, Type::EndOut) => true,
                (Type::Var(x), Type::Var(y)) => {
                    // Find the most recent binding of either variable.
                    for (bx, by) in env.iter().rev() {
                        if bx == x || by == y {
                            return bx == x && by == y;
                        }
                    }
                    x == y
                }
                (Type::Arrow(a1, a2), Type::Arrow(b1, b2))
                | (Type::Pair(a1, a2), Type::Pair(b1, b2))
                | (Type::In(a1, a2), Type::In(b1, b2))
                | (Type::Out(a1, a2), Type::Out(b1, b2)) => go(a1, b1, env) && go(a2, b2, env),
                (Type::Forall(x, kx, tx), Type::Forall(y, ky, ty)) => {
                    if kx != ky {
                        return false;
                    }
                    env.push((*x, *y));
                    let r = go(tx, ty, env);
                    env.pop();
                    r
                }
                (Type::Dual(x), Type::Dual(y)) | (Type::Neg(x), Type::Neg(y)) => go(x, y, env),
                (Type::Proto(nx, ax), Type::Proto(ny, ay))
                | (Type::Data(nx, ax), Type::Data(ny, ay)) => {
                    nx == ny
                        && ax.len() == ay.len()
                        && ax.iter().zip(ay).all(|(p, q)| go(p, q, env))
                }
                _ => false,
            }
        }
        go(self, other, &mut Vec::new())
    }

    /// True if this type is syntactically a session-type head
    /// (`?`, `!`, `End?`, `End!`, `Dual`).
    pub fn is_session_form(&self) -> bool {
        matches!(
            self,
            Type::In(..) | Type::Out(..) | Type::EndIn | Type::EndOut | Type::Dual(_)
        )
    }
}

/// Precedence-aware pretty printing mirroring the paper's concrete syntax.
impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_type(self, f, Prec::Top)
    }
}

#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Top, // forall, arrow
    Seq, // !T.S continuations
    App, // protocol application arguments
    Atom,
}

fn fmt_type(t: &Type, f: &mut fmt::Formatter<'_>, prec: Prec) -> fmt::Result {
    macro_rules! paren {
        ($needed:expr, $body:expr) => {{
            if $needed {
                write!(f, "(")?;
                $body;
                write!(f, ")")
            } else {
                $body;
                Ok(())
            }
        }};
    }
    match t {
        Type::Unit => write!(f, "Unit"),
        Type::Base(b) => write!(f, "{b}"),
        Type::Var(v) => write!(f, "{v}"),
        Type::EndIn => write!(f, "End?"),
        Type::EndOut => write!(f, "End!"),
        Type::Arrow(a, b) => paren!(prec > Prec::Top, {
            fmt_type(a, f, Prec::Seq)?;
            write!(f, " -> ")?;
            fmt_type(b, f, Prec::Top)?;
        }),
        Type::Pair(a, b) => {
            // Tuples are self-delimiting.
            write!(f, "(")?;
            fmt_type(a, f, Prec::Top)?;
            write!(f, ", ")?;
            fmt_type(b, f, Prec::Top)?;
            write!(f, ")")
        }
        Type::Forall(v, k, body) => paren!(prec > Prec::Top, {
            write!(f, "forall ({v}:{k}). ")?;
            fmt_type(body, f, Prec::Top)?;
        }),
        Type::In(p, s) => paren!(prec > Prec::Seq, {
            write!(f, "?")?;
            fmt_type(p, f, Prec::Atom)?;
            write!(f, ".")?;
            fmt_type(s, f, Prec::Seq)?;
        }),
        Type::Out(p, s) => paren!(prec > Prec::Seq, {
            write!(f, "!")?;
            fmt_type(p, f, Prec::Atom)?;
            write!(f, ".")?;
            fmt_type(s, f, Prec::Seq)?;
        }),
        Type::Dual(s) => paren!(prec > Prec::App, {
            write!(f, "Dual ")?;
            fmt_type(s, f, Prec::Atom)?;
        }),
        Type::Neg(p) => paren!(prec > Prec::App, {
            write!(f, "-")?;
            fmt_type(p, f, Prec::Atom)?;
        }),
        Type::Proto(name, args) | Type::Data(name, args) => {
            if args.is_empty() {
                write!(f, "{name}")
            } else {
                paren!(prec > Prec::Seq, {
                    write!(f, "{name}")?;
                    for a in args {
                        write!(f, " ")?;
                        fmt_type(a, f, Prec::Atom)?;
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_stream() -> Type {
        Type::proto("Stream", vec![Type::int()])
    }

    #[test]
    fn display_matches_paper_syntax() {
        let t = Type::output(int_stream(), Type::EndOut);
        assert_eq!(t.to_string(), "!(Stream Int).End!");
        let t = Type::input(Type::neg(Type::int()), Type::var("s"));
        assert_eq!(t.to_string(), "?(-Int).s");
        let t = Type::forall(
            "s",
            Kind::Session,
            Type::arrow(Type::input(Type::int(), Type::var("s")), Type::var("s")),
        );
        assert_eq!(t.to_string(), "forall (s:S). ?Int.s -> s");
    }

    #[test]
    fn node_count_counts_every_node() {
        assert_eq!(Type::Unit.node_count(), 1);
        assert_eq!(Type::output(Type::int(), Type::EndOut).node_count(), 3);
        assert_eq!(int_stream().node_count(), 2);
        assert_eq!(Type::dual(Type::dual(Type::EndIn)).node_count(), 3);
    }

    #[test]
    fn alpha_equivalence_respects_binders() {
        let t = Type::forall("a", Kind::Session, Type::var("a"));
        let u = Type::forall("b", Kind::Session, Type::var("b"));
        assert!(t.alpha_eq(&u));
        let v = Type::forall("a", Kind::Session, Type::var("c"));
        let w = Type::forall("b", Kind::Session, Type::var("c"));
        assert!(v.alpha_eq(&w));
        // Bound vs free occurrence must not be identified.
        let x = Type::forall("a", Kind::Session, Type::var("a"));
        let y = Type::forall("b", Kind::Session, Type::var("a"));
        assert!(!x.alpha_eq(&y));
        // Kinds on binders matter.
        let z = Type::forall("a", Kind::Value, Type::var("a"));
        assert!(!t.alpha_eq(&z));
    }

    #[test]
    fn alpha_equivalence_shadowing() {
        // ∀a.∀a.a  vs  ∀b.∀c.c : equal (innermost binding wins)
        let t = Type::forall(
            "a",
            Kind::Session,
            Type::forall("a", Kind::Session, Type::var("a")),
        );
        let u = Type::forall(
            "b",
            Kind::Session,
            Type::forall("c", Kind::Session, Type::var("c")),
        );
        assert!(t.alpha_eq(&u));
        // ∀a.∀b.a vs ∀c.∀d.d : not equal
        let v = Type::forall(
            "a",
            Kind::Session,
            Type::forall("b", Kind::Session, Type::var("a")),
        );
        assert!(!v.alpha_eq(&u));
    }

    #[test]
    fn free_vars_skip_bound() {
        let t = Type::forall(
            "a",
            Kind::Session,
            Type::arrow(Type::var("a"), Type::var("b")),
        );
        let fv = t.free_vars();
        assert!(fv.contains(&Symbol::intern("b")));
        assert!(!fv.contains(&Symbol::intern("a")));
    }
}
