//! Algorithmic type equivalence (paper Theorems 1–3).
//!
//! `T ≡_A U` holds iff `nrm⁺(T) =α nrm⁺(U)`. The test runs in
//! `O(|T| + |U|)` — this is the headline complexity result the paper
//! benchmarks against FreeST in Figure 10.
//!
//! Since the hash-consed [`TypeStore`](crate::store::TypeStore) landed,
//! the functions here are thin wrappers over the **process-wide sharded
//! store** ([`crate::shared::SharedStore`]): types are interned
//! (α-canonical ids), normalization is memoized per id, and the final
//! α-comparison is a single id equality. Each thread works through its
//! own [`WorkerStore`] mirror, so warm queries are lock-free — but the
//! arena and memo tables behind them are shared, so a type normalized by
//! *any* thread is warm for *every* thread. Only the first contact with
//! a type, process-wide, pays the linear traversal. Use
//! [`with_shared_store`] to run id-level code against this thread's
//! worker, [`global_store`] to attach workers of your own (e.g. a server
//! worker pool), or a private [`TypeStore`](crate::store::TypeStore) for
//! full isolation.

use crate::normalize::resugar;
use crate::shared::{SharedStore, StoreStats, WorkerStore};
use crate::types::Type;
use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

fn global() -> &'static Arc<SharedStore> {
    static GLOBAL: OnceLock<Arc<SharedStore>> = OnceLock::new();
    GLOBAL.get_or_init(SharedStore::new_arc)
}

/// The process-wide [`SharedStore`] behind [`equivalent`] and friends.
/// Attach additional workers with
/// [`SharedStore::worker`](crate::shared::SharedStore::worker) — ids are
/// interchangeable with the ones [`with_shared_store`] produces.
pub fn global_store() -> Arc<SharedStore> {
    Arc::clone(global())
}

/// Statistics of the process-wide store (nodes, `nrm` hits/misses).
/// Flushes this thread's pending delta first so the caller sees its own
/// work reflected.
pub fn store_stats() -> StoreStats {
    with_shared_store(|s| s.publish());
    global().stats()
}

thread_local! {
    static WORKER: RefCell<Option<WorkerStore>> = const { RefCell::new(None) };
}

/// Runs `f` against this thread's [`WorkerStore`] onto the process-wide
/// store — the cache behind [`equivalent`] and friends.
///
/// # Panics
/// Panics if called re-entrantly from within another `with_shared_store`
/// closure (the worker is a single `RefCell`).
pub fn with_shared_store<R>(f: impl FnOnce(&mut WorkerStore) -> R) -> R {
    WORKER.with(|w| {
        let mut slot = w.borrow_mut();
        let worker = slot.get_or_insert_with(|| global().worker());
        f(worker)
    })
}

/// Normalizes `t` through the shared store: `nrm⁺` with global
/// memoization. Equivalent to [`crate::normalize::nrm_pos`] up to
/// α-renaming, but repeated sub-spines normalize once per thread.
pub fn nrm_shared(t: &Type) -> Type {
    with_shared_store(|s| {
        let id = s.intern(t);
        let n = s.nrm(id);
        s.extract(n)
    })
}

/// Decides `T ≡_A U` by comparing positive normal forms up to α-renaming.
///
/// ```
/// use algst_core::{equiv::equivalent, types::Type};
/// // Dual (!Repeat.?X.Dual End!)  ≡  ?Repeat.!X.End!   (cf. paper Fig. 9)
/// let lhs = Type::dual(Type::output(
///     Type::proto("RepeatEq", vec![]),
///     Type::input(Type::var("x"), Type::dual(Type::EndOut)),
/// ));
/// let rhs = Type::input(
///     Type::proto("RepeatEq", vec![]),
///     Type::output(Type::var("x"), Type::EndOut),
/// );
/// assert!(equivalent(&lhs, &rhs));
/// ```
pub fn equivalent(t: &Type, u: &Type) -> bool {
    with_shared_store(|s| {
        let a = s.intern(t);
        let b = s.intern(u);
        s.equivalent_ids(a, b)
    })
}

/// Decides equivalence of the *duals* of two session types by comparing
/// negative normal forms (Theorem 1, item 2). Equivalent to
/// `equivalent(&Type::dual(t), &Type::dual(u))` but without allocating the
/// wrappers.
pub fn equivalent_dual(t: &Type, u: &Type) -> bool {
    with_shared_store(|s| {
        let a = s.intern(t);
        let b = s.intern(u);
        s.nrm_neg(a) == s.nrm_neg(b)
    })
}

/// Normalizes and compares; on mismatch returns the two normal forms
/// **resugared for display** (reified `Dual α` pulled back out of the
/// spine, fresh binders renamed — see [`crate::normalize::resugar`]), for
/// error messages of the shape "expected `S`, found `T`".
pub fn check_equivalent(t: &Type, u: &Type) -> Result<(), (Type, Type)> {
    with_shared_store(|s| {
        let a = s.intern(t);
        let b = s.intern(u);
        let (na, nb) = (s.nrm(a), s.nrm(b));
        if na == nb {
            Ok(())
        } else {
            Err((resugar(&s.extract(na)), resugar(&s.extract(nb))))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::Kind;

    #[test]
    fn equivalence_is_reflexive_and_symmetric() {
        let t = Type::forall(
            "s",
            Kind::Session,
            Type::arrow(
                Type::output(Type::proto("AstEq", vec![]), Type::var("s")),
                Type::var("s"),
            ),
        );
        assert!(equivalent(&t, &t));
        let u = Type::forall(
            "r",
            Kind::Session,
            Type::arrow(
                Type::output(Type::proto("AstEq", vec![]), Type::var("r")),
                Type::var("r"),
            ),
        );
        assert!(equivalent(&t, &u));
        assert!(equivalent(&u, &t));
    }

    #[test]
    fn nominal_protocols_differ_by_name() {
        let t = Type::output(Type::proto("P1", vec![]), Type::EndOut);
        let u = Type::output(Type::proto("P2", vec![]), Type::EndOut);
        assert!(!equivalent(&t, &u));
    }

    #[test]
    fn fig9_nonequivalent_example() {
        // ?Repeat Int . S  vs  ?Repeat String . S
        let s = Type::output(Type::pair(Type::char(), Type::EndOut), Type::EndOut);
        let t = Type::input(Type::proto("Rep9", vec![Type::int()]), s.clone());
        let u = Type::input(Type::proto("Rep9", vec![Type::string()]), s);
        assert!(!equivalent(&t, &u));
    }

    #[test]
    fn dual_equivalences() {
        // Dual End? ≡ End!
        assert!(equivalent(&Type::dual(Type::EndIn), &Type::EndOut));
        // Dual (?T.S) ≡ !T.Dual S
        let t = Type::dual(Type::input(Type::int(), Type::EndIn));
        let u = Type::output(Type::int(), Type::dual(Type::EndIn));
        assert!(equivalent(&t, &u));
    }

    #[test]
    fn equivalent_dual_matches_wrapping() {
        let t = Type::input(Type::int(), Type::var("s"));
        let u = Type::dual(Type::output(Type::int(), Type::dual(Type::var("s"))));
        assert_eq!(
            equivalent_dual(&t, &u),
            equivalent(&Type::dual(t.clone()), &Type::dual(u.clone()))
        );
        assert!(equivalent_dual(&t, &u));
    }

    #[test]
    fn check_equivalent_reports_normal_forms() {
        let t = Type::dual(Type::EndIn);
        let u = Type::EndIn;
        let (nt, nu) = check_equivalent(&t, &u).unwrap_err();
        assert_eq!(nt, Type::EndOut);
        assert_eq!(nu, Type::EndIn);
    }

    #[test]
    fn check_equivalent_resugars_reified_duals() {
        // The raw normal form of the left side is `?Int.!Bool.Dual s` —
        // a reified `Dual s` the user never wrote. The error must show
        // the resugared `Dual (!Int.?Bool.s)` instead.
        let t = Type::dual(Type::output(
            Type::int(),
            Type::input(Type::bool(), Type::var("s")),
        ));
        let u = Type::input(Type::int(), Type::var("s"));
        let (nt, nu) = check_equivalent(&t, &u).unwrap_err();
        assert_eq!(nt.to_string(), "Dual (!Int.?Bool.s)");
        assert_eq!(nu.to_string(), "?Int.s");
        // Resugaring is display-only: both sides stay equivalent to the
        // originals.
        assert!(equivalent(&nt, &t));
        assert!(equivalent(&nu, &u));
    }

    #[test]
    fn shared_store_memoizes_across_calls() {
        let t = Type::dual(Type::output(Type::int(), Type::var("warmS")));
        let u = Type::input(Type::int(), Type::dual(Type::var("warmS")));
        assert!(equivalent(&t, &u));
        // A second query hits the memo: both sides are already recorded
        // as normalized in the shared store.
        with_shared_store(|s| {
            let a = s.intern(&t);
            let na = s.nrm(a);
            assert!(s.is_normalized(na));
        });
        assert!(equivalent(&t, &u));
    }
}
