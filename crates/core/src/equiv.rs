//! Algorithmic type equivalence (paper Theorems 1–3).
//!
//! `T ≡_A U` holds iff `nrm⁺(T) =α nrm⁺(U)`. Because [`nrm_pos`] visits
//! every node once and α-comparison is a simultaneous traversal, the whole
//! test runs in `O(|T| + |U|)` — this is the headline complexity result the
//! paper benchmarks against FreeST in Figure 10.

use crate::normalize::{nrm_neg, nrm_pos};
use crate::types::Type;

/// Decides `T ≡_A U` by comparing positive normal forms up to α-renaming.
///
/// ```
/// use algst_core::{equiv::equivalent, types::Type};
/// // Dual (!Repeat.?X.Dual End!)  ≡  ?Repeat.!X.End!   (cf. paper Fig. 9)
/// let lhs = Type::dual(Type::output(
///     Type::proto("RepeatEq", vec![]),
///     Type::input(Type::var("x"), Type::dual(Type::EndOut)),
/// ));
/// let rhs = Type::input(
///     Type::proto("RepeatEq", vec![]),
///     Type::output(Type::var("x"), Type::EndOut),
/// );
/// assert!(equivalent(&lhs, &rhs));
/// ```
pub fn equivalent(t: &Type, u: &Type) -> bool {
    nrm_pos(t).alpha_eq(&nrm_pos(u))
}

/// Decides equivalence of the *duals* of two session types by comparing
/// negative normal forms (Theorem 1, item 2). Equivalent to
/// `equivalent(&Type::dual(t), &Type::dual(u))` but without allocating the
/// wrappers.
pub fn equivalent_dual(t: &Type, u: &Type) -> bool {
    nrm_neg(t).alpha_eq(&nrm_neg(u))
}

/// Normalizes and compares, also returning the normal forms (useful for
/// error messages: "expected `S`, found `T`").
pub fn check_equivalent(t: &Type, u: &Type) -> Result<(), (Type, Type)> {
    let nt = nrm_pos(t);
    let nu = nrm_pos(u);
    if nt.alpha_eq(&nu) {
        Ok(())
    } else {
        Err((nt, nu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::Kind;

    #[test]
    fn equivalence_is_reflexive_and_symmetric() {
        let t = Type::forall(
            "s",
            Kind::Session,
            Type::arrow(
                Type::output(Type::proto("AstEq", vec![]), Type::var("s")),
                Type::var("s"),
            ),
        );
        assert!(equivalent(&t, &t));
        let u = Type::forall(
            "r",
            Kind::Session,
            Type::arrow(
                Type::output(Type::proto("AstEq", vec![]), Type::var("r")),
                Type::var("r"),
            ),
        );
        assert!(equivalent(&t, &u));
        assert!(equivalent(&u, &t));
    }

    #[test]
    fn nominal_protocols_differ_by_name() {
        let t = Type::output(Type::proto("P1", vec![]), Type::EndOut);
        let u = Type::output(Type::proto("P2", vec![]), Type::EndOut);
        assert!(!equivalent(&t, &u));
    }

    #[test]
    fn fig9_nonequivalent_example() {
        // ?Repeat Int . S  vs  ?Repeat String . S
        let s = Type::output(Type::pair(Type::char(), Type::EndOut), Type::EndOut);
        let t = Type::input(Type::proto("Rep9", vec![Type::int()]), s.clone());
        let u = Type::input(Type::proto("Rep9", vec![Type::string()]), s);
        assert!(!equivalent(&t, &u));
    }

    #[test]
    fn dual_equivalences() {
        // Dual End? ≡ End!
        assert!(equivalent(&Type::dual(Type::EndIn), &Type::EndOut));
        // Dual (?T.S) ≡ !T.Dual S
        let t = Type::dual(Type::input(Type::int(), Type::EndIn));
        let u = Type::output(Type::int(), Type::dual(Type::EndIn));
        assert!(equivalent(&t, &u));
    }

    #[test]
    fn equivalent_dual_matches_wrapping() {
        let t = Type::input(Type::int(), Type::var("s"));
        let u = Type::dual(Type::output(Type::int(), Type::dual(Type::var("s"))));
        assert_eq!(
            equivalent_dual(&t, &u),
            equivalent(&Type::dual(t.clone()), &Type::dual(u.clone()))
        );
        assert!(equivalent_dual(&t, &u));
    }

    #[test]
    fn check_equivalent_reports_normal_forms() {
        let t = Type::dual(Type::EndIn);
        let u = Type::EndIn;
        let (nt, nu) = check_equivalent(&t, &u).unwrap_err();
        assert_eq!(nt, Type::EndOut);
        assert_eq!(nu, Type::EndIn);
    }
}
