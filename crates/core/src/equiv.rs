//! Algorithmic type equivalence (paper Theorems 1–3) — **deprecated
//! compatibility shims** over the process-global store.
//!
//! `T ≡_A U` holds iff `nrm⁺(T) =α nrm⁺(U)`; the test runs in
//! `O(|T| + |U|)`. The supported way to run it is an explicit
//! [`Session`](crate::Session) handle:
//!
//! ```
//! use algst_core::{Session, types::Type};
//! let mut session = Session::new();
//! assert!(session.equivalent(&Type::dual(Type::EndIn), &Type::EndOut));
//! ```
//!
//! The free functions here predate [`Session`](crate::Session): they
//! reach one process-global [`SharedStore`] through a `thread_local!`
//! worker, so every caller in the process shares warm state — and no
//! caller can ever be isolated from another. They remain for source
//! compatibility, share their store with [`Session::global`](crate::Session::global)
//! (ids interoperate), and will be removed once nothing links them.
//! This module is the **only** place allowed to touch the thread-local
//! worker; everything else takes a `&mut Session`.

use crate::normalize::resugar;
use crate::session::global_shared;
use crate::shared::{SharedStore, StoreStats, WorkerStore};
use crate::types::Type;
use std::cell::RefCell;
use std::sync::Arc;

/// The process-wide [`SharedStore`] behind the shims in this module and
/// behind [`Session::global`](crate::Session::global).
#[deprecated(note = "use algst_core::Session::global() and Session::store() instead")]
pub fn global_store() -> Arc<SharedStore> {
    Arc::clone(global_shared())
}

/// Statistics of the process-wide store (nodes, `nrm` hits/misses).
/// Flushes this thread's pending delta first so the caller sees its own
/// work reflected.
#[deprecated(note = "use algst_core::Session::global() and Session::stats() instead")]
pub fn store_stats() -> StoreStats {
    with_worker(|s| s.publish());
    global_shared().stats()
}

thread_local! {
    static WORKER: RefCell<Option<WorkerStore>> = const { RefCell::new(None) };
}

/// The non-deprecated internal body of [`with_shared_store`], so the
/// other shims can share it without tripping `deny(deprecated)`.
fn with_worker<R>(f: impl FnOnce(&mut WorkerStore) -> R) -> R {
    WORKER.with(|w| {
        let mut slot = w.try_borrow_mut().unwrap_or_else(|_| {
            panic!(
                "with_shared_store is not re-entrant: the thread-local worker is \
                 already borrowed by an enclosing call. Port the caller to \
                 algst_core::Session, whose explicit handles make this \
                 impossible by construction."
            )
        });
        let worker = slot.get_or_insert_with(|| global_shared().worker());
        f(worker)
    })
}

/// Runs `f` against this thread's [`WorkerStore`] onto the process-wide
/// store — the cache behind [`equivalent`] and friends.
///
/// # Panics
/// Panics if called re-entrantly from within another `with_shared_store`
/// closure (the worker is a single `RefCell`). [`Session`](crate::Session)
/// has no such trap: its handles are plain values the borrow checker
/// tracks.
#[deprecated(note = "use an explicit algst_core::Session (Session::global() shares this store)")]
pub fn with_shared_store<R>(f: impl FnOnce(&mut WorkerStore) -> R) -> R {
    with_worker(f)
}

/// Normalizes `t` through the process-global store: `nrm⁺` with global
/// memoization.
#[deprecated(note = "use algst_core::Session::normalize instead")]
pub fn nrm_shared(t: &Type) -> Type {
    with_worker(|s| {
        let id = s.intern(t);
        let n = s.nrm(id);
        s.extract(n)
    })
}

/// Decides `T ≡_A U` by comparing positive normal forms up to α-renaming.
#[deprecated(note = "use algst_core::Session::equivalent instead")]
pub fn equivalent(t: &Type, u: &Type) -> bool {
    with_worker(|s| {
        let a = s.intern(t);
        let b = s.intern(u);
        s.equivalent_ids(a, b)
    })
}

/// Decides equivalence of the *duals* of two session types by comparing
/// negative normal forms (Theorem 1, item 2).
#[deprecated(note = "use algst_core::Session::equivalent_dual instead")]
pub fn equivalent_dual(t: &Type, u: &Type) -> bool {
    with_worker(|s| {
        let a = s.intern(t);
        let b = s.intern(u);
        s.nrm_neg(a) == s.nrm_neg(b)
    })
}

/// Normalizes and compares; on mismatch returns the two normal forms
/// resugared for display.
#[deprecated(note = "use algst_core::Session::check_equivalent instead")]
pub fn check_equivalent(t: &Type, u: &Type) -> Result<(), (Type, Type)> {
    with_worker(|s| {
        let a = s.intern(t);
        let b = s.intern(u);
        let (na, nb) = (s.nrm(a), s.nrm(b));
        if na == nb {
            Ok(())
        } else {
            Err((resugar(&s.extract(na)), resugar(&s.extract(nb))))
        }
    })
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::session::Session;

    #[test]
    fn shims_and_sessions_share_the_global_store() {
        // A verdict computed through the deprecated path is warm for a
        // global session, and ids interoperate — migration can proceed
        // caller by caller.
        let t = Type::dual(Type::output(Type::int(), Type::var("shimCompat")));
        let u = Type::input(Type::int(), Type::dual(Type::var("shimCompat")));
        assert!(equivalent(&t, &u));
        let mut s = Session::global();
        assert!(s.equivalent(&t, &u));
        let shim_id = with_shared_store(|w| w.intern(&t));
        assert_eq!(s.intern(&t), shim_id);
    }

    #[test]
    fn shim_verdicts_match_session_verdicts() {
        let t = Type::dual(Type::EndIn);
        assert!(equivalent(&t, &Type::EndOut));
        assert!(equivalent_dual(&Type::EndIn, &Type::dual(Type::EndOut)));
        let (nt, nu) = check_equivalent(&t, &Type::EndIn).unwrap_err();
        assert_eq!((nt, nu), (Type::EndOut, Type::EndIn));
        let mut s = Session::global();
        assert_eq!(nrm_shared(&t), s.normalize(&t));
    }

    #[test]
    fn reentrant_shim_use_panics_cleanly() {
        // Regression (ISSUE 5 satellite): the legacy shim must keep
        // failing fast on the nesting bug — with a message that points
        // at the fix — while the same pattern written with Sessions
        // compiles and runs (see `session::tests::nested_use_is_fine_by_
        // construction`).
        let caught = std::panic::catch_unwind(|| {
            with_shared_store(|_outer| with_shared_store(|inner| inner.intern(&Type::EndOut)))
        })
        .expect_err("nested with_shared_store must panic");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message");
        assert!(
            message.contains("not re-entrant") && message.contains("Session"),
            "panic message must name the bug and the migration: {message}"
        );
    }

    #[test]
    fn store_stats_reflects_shim_work() {
        let t = Type::dual(Type::input(Type::int(), Type::var("shimStats")));
        assert!(equivalent(&t, &t));
        let stats = store_stats();
        assert!(stats.nodes > 0);
    }
}
