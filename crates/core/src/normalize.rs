//! Type normalization (paper Fig. 3) and the auxiliary metafunctions:
//! materialization `§(T).S` and the directional operators `+(T)` / `−(T)`.
//!
//! Normalization is defined by two mutually recursive functions:
//!
//! * [`nrm_pos`] (`nrm⁺`) traverses and reconstructs non-session constructs,
//!   pushes `Dual` down the spine of session types, and removes the reverse
//!   operator from message positions.
//! * [`nrm_neg`] (`nrm⁻`) carries a *pending* `Dual` along a session spine,
//!   reifying it only on type variables.
//!
//! In a normal form (paper Lemma 3), `-` occurs at most once at the top of a
//! protocol-kinded type or protocol argument, and `Dual` only applies to
//! variables at the end of a spine:
//!
//! ```text
//! Q ::= R | -R
//! R ::= Unit | R -> R | R ⊗ R | ∀α:κ.R | α | ?R.R | !R.R
//!     | End? | End! | Dual α | ρ Q̄
//! ```
//!
//! Equivalence is then α-comparison of normal forms ([`crate::session`]),
//! which runs in time linear in the sizes of the types (Theorem 3).

use crate::types::Type;
use std::sync::Arc;

/// The directional operator `−(T)` from Fig. 3:
/// `−(−T) = +(T)` and `−(T) = −T` when `T` is not a negation.
pub fn dir_neg(t: Type) -> Type {
    match t {
        Type::Neg(inner) => dir_pos(unwrap_arc(inner)),
        t => Type::Neg(Arc::new(t)),
    }
}

/// The directional operator `+(T)` from Fig. 3:
/// `+(−T) = −(T)` and `+(T) = T` when `T` is not a negation.
pub fn dir_pos(t: Type) -> Type {
    match t {
        Type::Neg(inner) => dir_neg(unwrap_arc(inner)),
        t => t,
    }
}

/// Materialization `§(T).S` from Fig. 3: fixes the direction of a single
/// transmission according to the (normalized) payload's polarity.
///
/// `§(−T).U = ?T.U` and `§(T).U = !T.U` otherwise.
pub fn materialize(payload: Type, cont: Type) -> Type {
    match payload {
        Type::Neg(inner) => Type::In(inner, Arc::new(cont)),
        t => Type::Out(Arc::new(t), Arc::new(cont)),
    }
}

/// Materialization lifted to sequences of payloads (used by the types of
/// `select` and `match`, Fig. 4 / rule E-Match):
/// `§(ε).S = S` and `§(T T̄).S = §(T).§(T̄).S`.
pub fn materialize_seq(payloads: Vec<Type>, cont: Type) -> Type {
    payloads
        .into_iter()
        .rev()
        .fold(cont, |acc, p| materialize(p, acc))
}

/// `−(T̄)`: maps [`dir_neg`] over a sequence.
pub fn dir_neg_seq(ts: Vec<Type>) -> Vec<Type> {
    ts.into_iter().map(dir_neg).collect()
}

/// `+(T̄)`: maps [`dir_pos`] over a sequence.
pub fn dir_pos_seq(ts: Vec<Type>) -> Vec<Type> {
    ts.into_iter().map(dir_pos).collect()
}

fn unwrap_arc(t: Arc<Type>) -> Type {
    Arc::try_unwrap(t).unwrap_or_else(|rc| (*rc).clone())
}

/// Positive normalization `nrm⁺(T)` (Fig. 3).
///
/// ```
/// use algst_core::{types::Type, normalize::nrm_pos};
/// // nrm⁺(Dual (?(-Int).α)) = ?Int.Dual α   (the paper's worked example)
/// let t = Type::dual(Type::input(Type::neg(Type::int()), Type::var("a")));
/// let n = nrm_pos(&t);
/// assert_eq!(n.to_string(), "?Int.Dual a");
/// ```
pub fn nrm_pos(t: &Type) -> Type {
    match t {
        Type::Unit | Type::Base(_) | Type::Var(_) | Type::EndIn | Type::EndOut => t.clone(),
        Type::Arrow(a, b) => Type::Arrow(Arc::new(nrm_pos(a)), Arc::new(nrm_pos(b))),
        Type::Pair(a, b) => Type::Pair(Arc::new(nrm_pos(a)), Arc::new(nrm_pos(b))),
        Type::Forall(v, k, body) => Type::Forall(*v, *k, Arc::new(nrm_pos(body))),
        // nrm⁺(?T.S) = §(−(nrm⁺ T)).nrm⁺ S
        Type::In(p, s) => materialize(dir_neg(nrm_pos(p)), nrm_pos(s)),
        // nrm⁺(!T.S) = §(+(nrm⁺ T)).nrm⁺ S
        Type::Out(p, s) => materialize(dir_pos(nrm_pos(p)), nrm_pos(s)),
        Type::Dual(s) => nrm_neg(s),
        Type::Proto(name, args) => Type::Proto(*name, args.iter().map(nrm_pos).collect()),
        Type::Data(name, args) => Type::Data(*name, args.iter().map(nrm_pos).collect()),
        // nrm⁺(−T) = −(nrm⁺ T)
        Type::Neg(inner) => dir_neg(nrm_pos(inner)),
    }
}

/// Negative normalization `nrm⁻(T)` (Fig. 3): normalization under a pending
/// `Dual`. Only meaningful for session types; for robustness, non-session
/// constructors fall back to reifying the dual on the positive normal form
/// (such types are ill-kinded and rejected by kind checking anyway).
pub fn nrm_neg(t: &Type) -> Type {
    match t {
        Type::Dual(s) => nrm_pos(s),
        Type::Var(v) => Type::Dual(Arc::new(Type::Var(*v))),
        // nrm⁻(?T.S) = §(+(nrm⁺ T)).nrm⁻ S
        Type::In(p, s) => materialize(dir_pos(nrm_pos(p)), nrm_neg(s)),
        // nrm⁻(!T.S) = §(−(nrm⁺ T)).nrm⁻ S
        Type::Out(p, s) => materialize(dir_neg(nrm_pos(p)), nrm_neg(s)),
        Type::EndIn => Type::EndOut,
        Type::EndOut => Type::EndIn,
        other => Type::Dual(Arc::new(nrm_pos(other))),
    }
}

/// Resugars a normal form for *display in diagnostics*.
///
/// Normal forms are optimized for comparison, not for reading: a `Dual`
/// written at the outside of a session type is pushed down the spine and
/// reified as `Dual α` on the trailing variable, and capture-avoiding
/// substitution can leave `%`-suffixed fresh binder names. Both confuse
/// users who never wrote them. This function
///
/// * pulls a reified trailing `Dual α` back out: a spine `?T₁.!T₂.…Dual α`
///   is shown as `Dual (!T₁.?T₂.…α)` (equivalent by C-DualInv and the
///   C-Dual rules);
/// * renames fresh `name%N` binders back to readable, capture-free names.
///
/// The result is always equivalent to the input; it is meant for error
/// messages (the checker's mismatch diagnostics), never for comparison.
pub fn resugar(t: &Type) -> Type {
    if matches!(t, Type::In(..) | Type::Out(..)) {
        if let Some(flipped) = unreify_dual_spine(t) {
            return Type::dual(flipped);
        }
    }
    match t {
        Type::Unit | Type::Base(_) | Type::Var(_) | Type::EndIn | Type::EndOut => t.clone(),
        Type::Arrow(a, b) => Type::arrow(resugar(a), resugar(b)),
        Type::Pair(a, b) => Type::pair(resugar(a), resugar(b)),
        Type::Forall(v, k, body) => {
            let body = resugar(body);
            if v.as_str().contains('%') {
                // A fresh binder from capture-avoiding substitution:
                // restore the base name, or a readable variant of it.
                let mut free = body.free_vars();
                free.remove(v);
                let mut candidate = crate::symbol::Symbol::intern(v.base_name());
                let mut n = 0u32;
                while free.contains(&candidate) {
                    n += 1;
                    candidate = crate::symbol::Symbol::intern(&format!("{}{n}", v.base_name()));
                }
                let renamed = crate::subst::subst_type(&body, *v, &Type::Var(candidate));
                Type::forall(candidate, *k, renamed)
            } else {
                Type::forall(*v, *k, body)
            }
        }
        Type::In(p, s) => Type::input(resugar(p), resugar(s)),
        Type::Out(p, s) => Type::output(resugar(p), resugar(s)),
        Type::Dual(s) => Type::dual(resugar(s)),
        Type::Neg(p) => Type::neg(resugar(p)),
        Type::Proto(name, args) => Type::Proto(*name, args.iter().map(resugar).collect()),
        Type::Data(name, args) => Type::Data(*name, args.iter().map(resugar).collect()),
    }
}

/// If the session spine `t` ends in a reified `Dual α`, returns the
/// direction-flipped spine ending in plain `α` (so `Dual (flip)` ≡ `t`).
fn unreify_dual_spine(t: &Type) -> Option<Type> {
    match t {
        Type::In(p, s) => {
            let s = unreify_dual_spine(s)?;
            Some(Type::output(resugar(p), s))
        }
        Type::Out(p, s) => {
            let s = unreify_dual_spine(s)?;
            Some(Type::input(resugar(p), s))
        }
        Type::Dual(inner) if matches!(**inner, Type::Var(_)) => Some((**inner).clone()),
        _ => None,
    }
}

/// True if `t` satisfies the normal-form grammar `Q` of Lemma 3.
pub fn is_normal(t: &Type) -> bool {
    match t {
        Type::Neg(inner) => is_normal_r(inner),
        _ => is_normal_r(t),
    }
}

fn is_normal_r(t: &Type) -> bool {
    match t {
        Type::Unit | Type::Base(_) | Type::Var(_) | Type::EndIn | Type::EndOut => true,
        Type::Arrow(a, b) | Type::Pair(a, b) => is_normal_r(a) && is_normal_r(b),
        Type::Forall(_, _, body) => is_normal_r(body),
        // In a message in normal form, the payload is an `R` (the negation,
        // if any, was materialized into the direction of the constructor).
        Type::In(p, s) | Type::Out(p, s) => is_normal_r(p) && is_normal_r(s),
        Type::Dual(inner) => matches!(**inner, Type::Var(_)),
        Type::Proto(_, args) => args.iter().all(is_normal),
        Type::Data(_, args) => args.iter().all(is_normal_r),
        Type::Neg(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directional_operators() {
        let int = Type::int();
        // −(Int) = −Int, −(−Int) = Int, +(−Int) = −Int, +(Int) = Int
        assert_eq!(dir_neg(int.clone()), Type::neg(int.clone()));
        assert_eq!(dir_neg(Type::neg(int.clone())), int);
        assert_eq!(dir_pos(Type::neg(int.clone())), Type::neg(int.clone()));
        assert_eq!(dir_pos(int.clone()), int);
        // Triple negation collapses: −(−(−T)) = −(T)
        let t3 = Type::neg(Type::neg(Type::neg(int.clone())));
        assert_eq!(nrm_pos(&t3), Type::neg(int));
    }

    #[test]
    fn paper_worked_example() {
        // nrm⁺(Dual (?(−Int).α)) = ?Int.Dual α
        let t = Type::dual(Type::input(Type::neg(Type::int()), Type::var("a")));
        assert_eq!(nrm_pos(&t).to_string(), "?Int.Dual a");
    }

    #[test]
    fn dual_pushes_down_spine() {
        // Dual(!Int.?Bool.End!) = ?Int.!Bool.End?
        let t = Type::dual(Type::output(
            Type::int(),
            Type::input(Type::bool(), Type::EndOut),
        ));
        assert_eq!(nrm_pos(&t).to_string(), "?Int.!Bool.End?");
    }

    #[test]
    fn dual_is_involutory() {
        let s = Type::output(Type::int(), Type::input(Type::bool(), Type::var("s")));
        let dd = Type::dual(Type::dual(s.clone()));
        assert!(nrm_pos(&dd).alpha_eq(&nrm_pos(&s)));
    }

    #[test]
    fn neg_in_flips_direction() {
        // ?(−T).S ≡ !T.S  (C-NegIn)
        let t = Type::input(Type::neg(Type::int()), Type::EndOut);
        assert_eq!(nrm_pos(&t).to_string(), "!Int.End?".replace("End?", "End!"));
        assert_eq!(nrm_pos(&t), Type::output(Type::int(), Type::EndOut));
    }

    #[test]
    fn neg_out_flips_direction() {
        // !(−T).S ≡ ?T.S  (C-NegOut)
        let t = Type::output(Type::neg(Type::int()), Type::EndIn);
        assert_eq!(nrm_pos(&t), Type::input(Type::int(), Type::EndIn));
    }

    #[test]
    fn normal_form_in_message_uses_direction() {
        // Normal forms keep payloads positive; direction encodes polarity.
        let t = Type::input(Type::int(), Type::var("s"));
        let n = nrm_pos(&t);
        assert_eq!(n, t);
        assert!(is_normal(&n));
    }

    #[test]
    fn nrm_neg_on_ends() {
        assert_eq!(nrm_neg(&Type::EndIn), Type::EndOut);
        assert_eq!(nrm_neg(&Type::EndOut), Type::EndIn);
    }

    #[test]
    fn proto_args_normalize_negations() {
        // Stream −(−Int) normalizes to Stream Int.
        let t = Type::proto("Stream", vec![Type::neg(Type::neg(Type::int()))]);
        assert_eq!(nrm_pos(&t).to_string(), "Stream Int");
        // Stream −Int stays (a single top-level negation is a normal form).
        let t = Type::proto("Stream", vec![Type::neg(Type::int())]);
        assert!(is_normal(&nrm_pos(&t)));
        assert_eq!(nrm_pos(&t).to_string(), "Stream (-Int)");
    }

    #[test]
    fn materialize_seq_orders_left_to_right() {
        // §(T U).S = §(T).§(U).S — first payload is the outermost message.
        let r = materialize_seq(vec![Type::int(), Type::neg(Type::bool())], Type::EndOut);
        assert_eq!(r.to_string(), "!Int.?Bool.End!");
    }

    #[test]
    fn resugar_pulls_reified_dual_out_of_the_spine() {
        // The user writes Dual (!Int.?Bool.s); the normal form reifies the
        // dual on the trailing variable; diagnostics show the former.
        let t = Type::dual(Type::output(
            Type::int(),
            Type::input(Type::bool(), Type::var("s")),
        ));
        let n = nrm_pos(&t);
        assert_eq!(n.to_string(), "?Int.!Bool.Dual s");
        let r = resugar(&n);
        assert_eq!(r.to_string(), "Dual (!Int.?Bool.s)");
        assert!(nrm_pos(&r).alpha_eq(&n), "resugaring must preserve ≡");
    }

    #[test]
    fn resugar_keeps_end_terminated_spines() {
        let n = nrm_pos(&Type::dual(Type::output(Type::int(), Type::EndOut)));
        assert_eq!(resugar(&n).to_string(), n.to_string());
    }

    #[test]
    fn resugar_renames_fresh_binders() {
        use crate::symbol::Symbol;
        let fresh = Symbol::fresh("s");
        assert!(fresh.as_str().contains('%'));
        let t = Type::Forall(
            fresh,
            crate::kind::Kind::Session,
            std::sync::Arc::new(Type::arrow(Type::Var(fresh), Type::Var(fresh))),
        );
        let r = resugar(&t);
        assert_eq!(r.to_string(), "forall (s:S). s -> s");
        assert!(r.alpha_eq(&t));
        // A colliding free `s` forces a variant name.
        let u = Type::Forall(
            fresh,
            crate::kind::Kind::Session,
            std::sync::Arc::new(Type::arrow(Type::Var(fresh), Type::var("s"))),
        );
        let ru = resugar(&u);
        assert_eq!(ru.to_string(), "forall (s1:S). s1 -> s");
        assert!(ru.alpha_eq(&u));
    }

    #[test]
    fn nrm_is_idempotent_on_samples() {
        let samples = vec![
            Type::dual(Type::input(Type::neg(Type::int()), Type::var("a"))),
            Type::dual(Type::dual(Type::output(Type::int(), Type::EndIn))),
            Type::proto(
                "P",
                vec![Type::neg(Type::neg(Type::neg(Type::proto("Q", vec![]))))],
            ),
            Type::forall(
                "s",
                crate::kind::Kind::Session,
                Type::arrow(
                    Type::dual(Type::output(Type::int(), Type::var("s"))),
                    Type::var("s"),
                ),
            ),
        ];
        for t in samples {
            let once = nrm_pos(&t);
            let twice = nrm_pos(&once);
            assert!(once.alpha_eq(&twice), "not idempotent on {t}");
            assert!(is_normal(&once), "not normal: {once}");
        }
    }
}
