//! Algorithmic type formation (paper Fig. 1).
//!
//! The judgment `Δ ⊢ T ⇒ κ` *synthesizes* the minimal kind of `T`; the
//! judgment `Δ ⊢ T ⇐ κ` checks that the synthesized kind is a subkind of
//! the expected one (rule T-Sub).

use crate::kind::Kind;
use crate::protocol::Declarations;
use crate::store::{TNode, TypeId, TypeStore};
use crate::symbol::Symbol;
use crate::types::Type;
use std::fmt;

/// A kind-checking error, pointing at the offending subterm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KindError {
    UnboundVar(Symbol),
    UnboundProtocol(Symbol),
    UnboundData(Symbol),
    ArityMismatch {
        name: Symbol,
        expected: usize,
        found: usize,
    },
    /// `Δ ⊢ T ⇒ κ` but `κ ≰ κ'`.
    NotSubkind {
        ty: Type,
        found: Kind,
        expected: Kind,
    },
}

impl fmt::Display for KindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KindError::UnboundVar(v) => write!(f, "unbound type variable {v}"),
            KindError::UnboundProtocol(p) => write!(f, "unbound protocol {p}"),
            KindError::UnboundData(d) => write!(f, "unbound datatype {d}"),
            KindError::ArityMismatch {
                name,
                expected,
                found,
            } => write!(f, "{name} expects {expected} argument(s) but got {found}"),
            KindError::NotSubkind {
                ty,
                found,
                expected,
            } => write!(
                f,
                "type {ty} has kind {found}, which is not a subkind of the expected {expected}"
            ),
        }
    }
}

impl std::error::Error for KindError {}

/// A kind context `Δ`: global declarations plus a scoped stack of type
/// variable bindings `α : κ`.
#[derive(Clone)]
pub struct KindCtx<'d> {
    decls: &'d Declarations,
    vars: Vec<(Symbol, Kind)>,
}

impl<'d> KindCtx<'d> {
    pub fn new(decls: &'d Declarations) -> KindCtx<'d> {
        KindCtx {
            decls,
            vars: Vec::new(),
        }
    }

    pub fn decls(&self) -> &'d Declarations {
        self.decls
    }

    pub fn push_var(&mut self, var: Symbol, kind: Kind) {
        self.vars.push((var, kind));
    }

    pub fn pop_var(&mut self) {
        self.vars.pop();
    }

    pub fn lookup_var(&self, var: Symbol) -> Option<Kind> {
        self.vars
            .iter()
            .rev()
            .find(|(v, _)| *v == var)
            .map(|(_, k)| *k)
    }

    /// Runs `f` with `var : kind` in scope.
    pub fn with_var<R>(&mut self, var: Symbol, kind: Kind, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_var(var, kind);
        let r = f(self);
        self.pop_var();
        r
    }

    /// `Δ ⊢ T ⇒ κ`: synthesizes the minimal kind of `T`.
    pub fn synth(&mut self, ty: &Type) -> Result<Kind, KindError> {
        match ty {
            // T-Unit (and base types, by extension)
            Type::Unit | Type::Base(_) => Ok(Kind::Value),
            // T-Arrow
            Type::Arrow(a, b) => {
                self.check(a, Kind::Value)?;
                self.check(b, Kind::Value)?;
                Ok(Kind::Value)
            }
            // T-Pair
            Type::Pair(a, b) => {
                self.check(a, Kind::Value)?;
                self.check(b, Kind::Value)?;
                Ok(Kind::Value)
            }
            // T-Poly
            Type::Forall(v, k, body) => {
                self.with_var(*v, *k, |ctx| ctx.check(body, Kind::Value))?;
                Ok(Kind::Value)
            }
            // T-Var
            Type::Var(v) => self.lookup_var(*v).ok_or(KindError::UnboundVar(*v)),
            // T-In / T-Out
            Type::In(p, s) | Type::Out(p, s) => {
                self.check(p, Kind::Protocol)?;
                self.check(s, Kind::Session)?;
                Ok(Kind::Session)
            }
            // T-End? / T-End!
            Type::EndIn | Type::EndOut => Ok(Kind::Session),
            // T-Dual
            Type::Dual(s) => {
                self.check(s, Kind::Session)?;
                Ok(Kind::Session)
            }
            // T-Protocol
            Type::Proto(name, args) => {
                let decl = self
                    .decls
                    .protocol(*name)
                    .ok_or(KindError::UnboundProtocol(*name))?;
                if decl.params.len() != args.len() {
                    return Err(KindError::ArityMismatch {
                        name: *name,
                        expected: decl.params.len(),
                        found: args.len(),
                    });
                }
                for a in args {
                    self.check(a, Kind::Protocol)?;
                }
                Ok(Kind::Protocol)
            }
            // T-MsgNeg
            Type::Neg(t) => {
                self.check(t, Kind::Protocol)?;
                Ok(Kind::Protocol)
            }
            // Datatypes (extension): kind T, arguments of kind T.
            Type::Data(name, args) => {
                let decl = self
                    .decls
                    .data(*name)
                    .ok_or(KindError::UnboundData(*name))?;
                if decl.params.len() != args.len() {
                    return Err(KindError::ArityMismatch {
                        name: *name,
                        expected: decl.params.len(),
                        found: args.len(),
                    });
                }
                for a in args {
                    self.check(a, Kind::Value)?;
                }
                Ok(Kind::Value)
            }
        }
    }

    /// `Δ ⊢ T ⇐ κ`: checks `T` against an expected kind (rule T-Sub).
    pub fn check(&mut self, ty: &Type, expected: Kind) -> Result<(), KindError> {
        let found = self.synth(ty)?;
        if found.is_subkind_of(expected) {
            Ok(())
        } else {
            Err(KindError::NotSubkind {
                ty: ty.clone(),
                found,
                expected,
            })
        }
    }

    /// `Δ ⊢ T ⇒ κ` on an interned id: the same judgment as
    /// [`KindCtx::synth`], but walking [`TNode`]s directly. Binder kinds
    /// of the nameless `∀`s are tracked in a de-Bruijn stack; free
    /// variables resolve through the named bindings of this context.
    pub fn synth_id(&mut self, store: &TypeStore, id: TypeId) -> Result<Kind, KindError> {
        let mut bound = Vec::new();
        self.synth_id_under(store, id, &mut bound)
    }

    fn synth_id_under(
        &mut self,
        store: &TypeStore,
        id: TypeId,
        bound: &mut Vec<Kind>,
    ) -> Result<Kind, KindError> {
        match store.node(id) {
            TNode::Unit | TNode::Base(_) => Ok(Kind::Value),
            TNode::Arrow(a, b) | TNode::Pair(a, b) => {
                self.check_id_under(store, *a, Kind::Value, bound)?;
                self.check_id_under(store, *b, Kind::Value, bound)?;
                Ok(Kind::Value)
            }
            TNode::Forall(k, body) => {
                bound.push(*k);
                let r = self.check_id_under(store, *body, Kind::Value, bound);
                bound.pop();
                r?;
                Ok(Kind::Value)
            }
            TNode::Free(v) => self.lookup_var(*v).ok_or(KindError::UnboundVar(*v)),
            TNode::Bound(i) => Ok(bound[bound.len() - 1 - *i as usize]),
            TNode::In(p, s) | TNode::Out(p, s) => {
                self.check_id_under(store, *p, Kind::Protocol, bound)?;
                self.check_id_under(store, *s, Kind::Session, bound)?;
                Ok(Kind::Session)
            }
            TNode::EndIn | TNode::EndOut => Ok(Kind::Session),
            TNode::Dual(s) => {
                self.check_id_under(store, *s, Kind::Session, bound)?;
                Ok(Kind::Session)
            }
            TNode::Proto(name, args) => {
                let decl = self
                    .decls
                    .protocol(*name)
                    .ok_or(KindError::UnboundProtocol(*name))?;
                if decl.params.len() != args.len() {
                    return Err(KindError::ArityMismatch {
                        name: *name,
                        expected: decl.params.len(),
                        found: args.len(),
                    });
                }
                for &a in args {
                    self.check_id_under(store, a, Kind::Protocol, bound)?;
                }
                Ok(Kind::Protocol)
            }
            TNode::Neg(t) => {
                self.check_id_under(store, *t, Kind::Protocol, bound)?;
                Ok(Kind::Protocol)
            }
            TNode::Data(name, args) => {
                let decl = self
                    .decls
                    .data(*name)
                    .ok_or(KindError::UnboundData(*name))?;
                if decl.params.len() != args.len() {
                    return Err(KindError::ArityMismatch {
                        name: *name,
                        expected: decl.params.len(),
                        found: args.len(),
                    });
                }
                for &a in args {
                    self.check_id_under(store, a, Kind::Value, bound)?;
                }
                Ok(Kind::Value)
            }
        }
    }

    /// `Δ ⊢ T ⇐ κ` on an interned id (rule T-Sub).
    pub fn check_id(
        &mut self,
        store: &TypeStore,
        id: TypeId,
        expected: Kind,
    ) -> Result<(), KindError> {
        let mut bound = Vec::new();
        self.check_id_under(store, id, expected, &mut bound)
    }

    fn check_id_under(
        &mut self,
        store: &TypeStore,
        id: TypeId,
        expected: Kind,
        bound: &mut Vec<Kind>,
    ) -> Result<(), KindError> {
        let found = self.synth_id_under(store, id, bound)?;
        if found.is_subkind_of(expected) {
            Ok(())
        } else {
            Err(KindError::NotSubkind {
                ty: store.extract(id),
                found,
                expected,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Ctor, ProtocolDecl};

    fn decls_with_stream() -> Declarations {
        let mut d = Declarations::new();
        d.add_protocol(ProtocolDecl {
            name: Symbol::intern("StreamK"),
            params: vec![Symbol::intern("a")],
            ctors: vec![Ctor::new(
                "NextK",
                vec![Type::var("a"), Type::proto("StreamK", vec![Type::var("a")])],
            )],
        })
        .unwrap();
        d.validate().unwrap();
        d
    }

    #[test]
    fn unit_has_kind_value() {
        let d = Declarations::new();
        let mut ctx = KindCtx::new(&d);
        assert_eq!(ctx.synth(&Type::Unit).unwrap(), Kind::Value);
        // and checks against P by subsumption
        ctx.check(&Type::Unit, Kind::Protocol).unwrap();
        assert!(ctx.check(&Type::Unit, Kind::Session).is_err());
    }

    #[test]
    fn session_types_synthesize_session() {
        let d = decls_with_stream();
        let mut ctx = KindCtx::new(&d);
        let t = Type::output(Type::proto("StreamK", vec![Type::int()]), Type::EndOut);
        assert_eq!(ctx.synth(&t).unwrap(), Kind::Session);
    }

    #[test]
    fn message_payload_must_be_protocol_kinded() {
        // Everything lifts into P, so even a function type is fine as a
        // payload; but a payload with an unbound protocol is not.
        let d = Declarations::new();
        let mut ctx = KindCtx::new(&d);
        let ok = Type::output(Type::arrow(Type::int(), Type::int()), Type::EndIn);
        assert_eq!(ctx.synth(&ok).unwrap(), Kind::Session);
        let bad = Type::output(Type::proto("Nope", vec![]), Type::EndIn);
        assert!(matches!(
            ctx.synth(&bad),
            Err(KindError::UnboundProtocol(_))
        ));
    }

    #[test]
    fn continuation_must_be_session() {
        let d = Declarations::new();
        let mut ctx = KindCtx::new(&d);
        let bad = Type::output(Type::int(), Type::int());
        assert!(matches!(ctx.synth(&bad), Err(KindError::NotSubkind { .. })));
    }

    #[test]
    fn neg_requires_protocol_kind_argument() {
        let d = Declarations::new();
        let mut ctx = KindCtx::new(&d);
        // -Int is fine (Int lifts to P); kind is P.
        assert_eq!(ctx.synth(&Type::neg(Type::int())).unwrap(), Kind::Protocol);
        // But -T cannot be used where a session is expected.
        assert!(ctx.check(&Type::neg(Type::int()), Kind::Session).is_err());
    }

    #[test]
    fn dual_requires_session() {
        let d = Declarations::new();
        let mut ctx = KindCtx::new(&d);
        assert!(ctx.synth(&Type::dual(Type::int())).is_err());
        assert_eq!(ctx.synth(&Type::dual(Type::EndIn)).unwrap(), Kind::Session);
    }

    #[test]
    fn protocol_arity_checked() {
        let d = decls_with_stream();
        let mut ctx = KindCtx::new(&d);
        let bad = Type::proto("StreamK", vec![]);
        assert!(matches!(
            ctx.synth(&bad),
            Err(KindError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn forall_scopes_variables() {
        let d = Declarations::new();
        let mut ctx = KindCtx::new(&d);
        let t = Type::forall(
            "s",
            Kind::Session,
            Type::arrow(Type::var("s"), Type::var("s")),
        );
        assert_eq!(ctx.synth(&t).unwrap(), Kind::Value);
        // Variable escapes its scope:
        assert!(ctx.synth(&Type::var("s")).is_err());
    }

    #[test]
    fn id_level_kind_checking_agrees_with_trees() {
        let d = decls_with_stream();
        let mut ctx = KindCtx::new(&d);
        let mut store = TypeStore::new();
        let samples = [
            Type::forall(
                "s",
                Kind::Session,
                Type::output(Type::proto("StreamK", vec![Type::int()]), Type::var("s")),
            ),
            Type::neg(Type::int()),
            Type::input(Type::arrow(Type::int(), Type::int()), Type::EndIn),
        ];
        for t in samples {
            let id = store.intern(&t);
            assert_eq!(
                ctx.synth_id(&store, id).unwrap(),
                ctx.synth(&t).unwrap(),
                "kind mismatch on {t}"
            );
        }
        // Errors agree too: Dual of a non-session, unbound names.
        let bad = store.intern(&Type::dual(Type::int()));
        assert!(matches!(
            ctx.synth_id(&store, bad),
            Err(KindError::NotSubkind { .. })
        ));
        let unbound = store.intern(&Type::var("loose"));
        assert!(matches!(
            ctx.synth_id(&store, unbound),
            Err(KindError::UnboundVar(_))
        ));
    }

    #[test]
    fn paper_example_stack_formation() {
        // Example 1 (supplement C): protocol Stack a = Pop -a | Push a (Stack a) (Stack a)
        let mut d = Declarations::new();
        d.add_protocol(ProtocolDecl {
            name: Symbol::intern("StackK"),
            params: vec![Symbol::intern("a")],
            ctors: vec![
                Ctor::new("PopK", vec![Type::neg(Type::var("a"))]),
                Ctor::new(
                    "PushK",
                    vec![
                        Type::var("a"),
                        Type::proto("StackK", vec![Type::var("a")]),
                        Type::proto("StackK", vec![Type::var("a")]),
                    ],
                ),
            ],
        })
        .unwrap();
        d.validate().unwrap();
    }
}
