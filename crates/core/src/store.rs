//! A hash-consed type store: the `TypeId` interior representation.
//!
//! [`crate::types::Type`] is the *boundary* representation — what the
//! parser produces and what error messages display. Everything on the
//! equivalence hot path works on [`TypeId`]s instead: small indices into
//! an append-only arena ([`TypeStore`]) in which every structurally
//! distinct node exists **exactly once**.
//!
//! Two properties make ids powerful:
//!
//! 1. **Hash-consing** — [`TypeStore::mk`] deduplicates nodes, so
//!    structural equality of whole types is `TypeId` equality and common
//!    sub-spines are stored (and later normalized) once, globally.
//! 2. **Canonical binders** — [`TypeStore::intern`] converts bound
//!    variables to de-Bruijn indices ([`TNode::Bound`]) and drops binder
//!    names, so *α-equivalent types intern to the same id*. α-comparison,
//!    the inner loop of the paper's equivalence algorithm (Theorem 3), is
//!    therefore a single integer comparison.
//!
//! On top of the arena the store memoizes the normalization functions of
//! Fig. 3 per id ([`TypeStore::nrm`] / [`TypeStore::nrm_neg`], a
//! `TypeId → TypeId` table), giving the amortized equivalence check
//!
//! ```text
//! equivalent(T, U)  =  nrm(intern(T)) == nrm(intern(U))
//! ```
//!
//! which is O(1) once each side has been normalized once — the common
//! case in a type-checking server answering repeated queries.
//!
//! ## Memoization invariants
//!
//! * The arena is append-only; a `TypeId` is never invalidated.
//! * `nrm` results are in the normal-form grammar `Q` of Lemma 3, and the
//!   memo is *fixpoint-seeded*: after computing `nrm(t) = n` the store
//!   also records `nrm(n) = n`, so `nrm` is idempotent by construction.
//! * Both memo tables only relate ids of the same store.
//!
//! Conversion back to trees ([`TypeStore::extract`]) re-introduces
//! binder names from first-intern hints where capture-free, falling back
//! to canonical names (`a`, `b`, …, avoiding the free variables of the
//! type), so `Type → TypeId → Type` round-trips up to α-equivalence and
//! usually verbatim for display.

use crate::kind::Kind;
use crate::symbol::Symbol;
use crate::types::{BaseType, Type};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// An interned type: an index into a [`TypeStore`] arena.
///
/// Ids are only meaningful relative to the store that produced them.
/// Equality of ids from the same store is α-equivalence of the
/// underlying types (structural equality after binder canonicalization).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(u32);

impl TypeId {
    /// The arena index, e.g. for parallel side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from an arena index. Crate-internal: only stores may
    /// mint ids (the [`crate::shared`] arena appends under its own lock).
    pub(crate) fn from_index(i: usize) -> TypeId {
        TypeId(u32::try_from(i).expect("type store overflow"))
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One hash-consed node: the [`Type`] grammar with `TypeId` children and
/// nameless binders.
///
/// The only shape difference from `Type` is the variable split: a
/// variable is either [`TNode::Free`] (a named symbol, never captured)
/// or [`TNode::Bound`] (a de-Bruijn index counting enclosing
/// [`TNode::Forall`] binders, innermost = 0).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TNode {
    Unit,
    Base(BaseType),
    Arrow(TypeId, TypeId),
    Pair(TypeId, TypeId),
    /// `∀:κ. T` — nameless; occurrences in the body are `Bound` indices.
    Forall(Kind, TypeId),
    /// A free type variable.
    Free(Symbol),
    /// A bound type variable, as a de-Bruijn index (innermost binder 0).
    Bound(u32),
    In(TypeId, TypeId),
    Out(TypeId, TypeId),
    EndIn,
    EndOut,
    Dual(TypeId),
    Proto(Symbol, Vec<TypeId>),
    Neg(TypeId),
    Data(Symbol, Vec<TypeId>),
}

/// The append-only hash-consing arena plus the normalization memo tables.
#[derive(Default)]
pub struct TypeStore {
    nodes: Vec<TNode>,
    ids: HashMap<TNode, TypeId>,
    /// Per-node: how many enclosing binders the subtree needs
    /// (`1 + max escaping de-Bruijn index`; 0 = closed under binders).
    /// Lets substitution skip subtrees that cannot mention the target.
    needs_binders: Vec<u32>,
    /// Memo: `nrm⁺` per id.
    memo_pos: Vec<Option<TypeId>>,
    /// Memo: `nrm⁻` per id.
    memo_neg: Vec<Option<TypeId>>,
    /// Display-name hints for `Forall` ids: the binder name the type was
    /// *first* interned with. Hints never affect identity — α-equivalent
    /// types still share an id — only how [`TypeStore::extract`] renders
    /// binders back.
    binder_hints: HashMap<TypeId, Symbol>,
    /// Memo for [`TypeStore::extract_cached`]: whole-tree extraction per
    /// id. Entries share subtrees via [`Arc`], so a hit is a cheap
    /// top-node clone.
    extract_memo: HashMap<TypeId, Type>,
}

impl fmt::Debug for TypeStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TypeStore")
            .field("nodes", &self.nodes.len())
            .field(
                "normalized",
                &self.memo_pos.iter().filter(|m| m.is_some()).count(),
            )
            .finish()
    }
}

impl TypeStore {
    pub fn new() -> TypeStore {
        TypeStore::default()
    }

    /// Number of distinct nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind `id`.
    pub fn node(&self, id: TypeId) -> &TNode {
        &self.nodes[id.index()]
    }

    /// Hash-conses `node`: returns the existing id when an equal node was
    /// interned before, otherwise appends it.
    pub fn mk(&mut self, node: TNode) -> TypeId {
        if let Some(&id) = self.ids.get(&node) {
            return id;
        }
        let needs = self.compute_needs(&node);
        let id = TypeId(u32::try_from(self.nodes.len()).expect("type store overflow"));
        self.nodes.push(node.clone());
        self.ids.insert(node, id);
        self.needs_binders.push(needs);
        self.memo_pos.push(None);
        self.memo_neg.push(None);
        id
    }

    fn compute_needs(&self, node: &TNode) -> u32 {
        let of = |id: &TypeId| self.needs_binders[id.index()];
        match node {
            TNode::Unit | TNode::Base(_) | TNode::Free(_) | TNode::EndIn | TNode::EndOut => 0,
            TNode::Bound(i) => i + 1,
            TNode::Arrow(a, b) | TNode::Pair(a, b) | TNode::In(a, b) | TNode::Out(a, b) => {
                of(a).max(of(b))
            }
            TNode::Forall(_, body) => of(body).saturating_sub(1),
            TNode::Dual(t) | TNode::Neg(t) => of(t),
            TNode::Proto(_, args) | TNode::Data(_, args) => args.iter().map(of).max().unwrap_or(0),
        }
    }

    /// True when the subtree mentions no de-Bruijn index escaping it
    /// (every interned top-level type satisfies this).
    pub fn is_binder_closed(&self, id: TypeId) -> bool {
        self.needs_binders[id.index()] == 0
    }

    // ------------------------------------------------------------ interning

    /// Interns a boundary [`Type`], canonicalizing binders to de-Bruijn
    /// indices so that α-equivalent trees produce the same id.
    pub fn intern(&mut self, t: &Type) -> TypeId {
        StoreOps::intern(self, t)
    }

    /// Records the binder name a `Forall` id was first written with
    /// (best-effort, display-only — identity is unaffected). Fresh
    /// `%`-suffixed names from capture-avoiding substitution are not
    /// worth remembering; later names never override the first. A cached
    /// extraction of this exact id made before the hint existed is
    /// dropped; enclosing cached trees keep their canonical names.
    pub(crate) fn record_binder_hint(&mut self, id: TypeId, name: Symbol) {
        if !name.as_str().contains('%') && !self.binder_hints.contains_key(&id) {
            self.binder_hints.insert(id, name);
            self.extract_memo.remove(&id);
        }
    }

    /// Looks `node` up in the hash-consing map without interning it.
    pub(crate) fn lookup_node(&self, node: &TNode) -> Option<TypeId> {
        self.ids.get(node).copied()
    }

    // ----------------------------------------------------------- extraction

    /// Converts an id back to a boundary [`Type`]. Binders are named
    /// from the hint recorded at intern time (the name the type was
    /// first written with) when that cannot capture, falling back to
    /// canonical names (`a`, `b`, …) that avoid the free variables of
    /// the type. The round trip `extract ∘ intern` is the identity up to
    /// α-equivalence (and `intern ∘ extract` is the identity on ids).
    pub fn extract(&self, id: TypeId) -> Type {
        let mut free = HashSet::new();
        let mut seen = HashSet::new();
        self.collect_free(id, &mut seen, &mut free);
        let mut binders: Vec<Symbol> = Vec::new();
        let mut next = 0usize;
        self.extract_under(id, &mut binders, &mut next, &free)
    }

    /// [`TypeStore::extract`] with a per-id memo: repeated extraction of
    /// the same id (e.g. every context lookup of a global's signature)
    /// costs one map hit and a shallow clone — extracted trees share
    /// subterms via [`Arc`].
    pub fn extract_cached(&mut self, id: TypeId) -> Type {
        if let Some(t) = self.extract_memo.get(&id) {
            return t.clone();
        }
        let t = self.extract(id);
        self.extract_memo.insert(id, t.clone());
        t
    }

    fn collect_free(&self, id: TypeId, seen: &mut HashSet<TypeId>, acc: &mut HashSet<Symbol>) {
        if !seen.insert(id) {
            return;
        }
        match self.node(id) {
            TNode::Free(v) => {
                acc.insert(*v);
            }
            TNode::Unit | TNode::Base(_) | TNode::Bound(_) | TNode::EndIn | TNode::EndOut => {}
            TNode::Arrow(a, b) | TNode::Pair(a, b) | TNode::In(a, b) | TNode::Out(a, b) => {
                self.collect_free(*a, seen, acc);
                self.collect_free(*b, seen, acc);
            }
            TNode::Forall(_, body) => self.collect_free(*body, seen, acc),
            TNode::Dual(t) | TNode::Neg(t) => self.collect_free(*t, seen, acc),
            TNode::Proto(_, args) | TNode::Data(_, args) => {
                for a in args {
                    self.collect_free(*a, seen, acc);
                }
            }
        }
    }

    fn extract_under(
        &self,
        id: TypeId,
        binders: &mut Vec<Symbol>,
        next: &mut usize,
        free: &HashSet<Symbol>,
    ) -> Type {
        match self.node(id) {
            TNode::Unit => Type::Unit,
            TNode::Base(b) => Type::Base(*b),
            TNode::Free(v) => Type::Var(*v),
            TNode::Bound(i) => {
                let ix = binders
                    .len()
                    .checked_sub(1 + *i as usize)
                    .expect("dangling de-Bruijn index");
                Type::Var(binders[ix])
            }
            TNode::Arrow(a, b) => Type::Arrow(
                Arc::new(self.extract_under(*a, binders, next, free)),
                Arc::new(self.extract_under(*b, binders, next, free)),
            ),
            TNode::Pair(a, b) => Type::Pair(
                Arc::new(self.extract_under(*a, binders, next, free)),
                Arc::new(self.extract_under(*b, binders, next, free)),
            ),
            TNode::Forall(k, body) => {
                // Prefer the name the binder was first interned with; it
                // must not shadow an in-scope binder (an inner Bound
                // could silently re-bind) nor collide with a free
                // variable of the whole type.
                let hint = self
                    .binder_hints
                    .get(&id)
                    .copied()
                    .filter(|h| !free.contains(h) && !binders.contains(h));
                let name = hint.unwrap_or_else(|| canonical_binder(next, binders, free));
                binders.push(name);
                let b = self.extract_under(*body, binders, next, free);
                binders.pop();
                Type::Forall(name, *k, Arc::new(b))
            }
            TNode::In(p, s) => Type::In(
                Arc::new(self.extract_under(*p, binders, next, free)),
                Arc::new(self.extract_under(*s, binders, next, free)),
            ),
            TNode::Out(p, s) => Type::Out(
                Arc::new(self.extract_under(*p, binders, next, free)),
                Arc::new(self.extract_under(*s, binders, next, free)),
            ),
            TNode::EndIn => Type::EndIn,
            TNode::EndOut => Type::EndOut,
            TNode::Dual(s) => Type::Dual(Arc::new(self.extract_under(*s, binders, next, free))),
            TNode::Neg(p) => Type::Neg(Arc::new(self.extract_under(*p, binders, next, free))),
            TNode::Proto(name, args) => Type::Proto(
                *name,
                args.iter()
                    .map(|a| self.extract_under(*a, binders, next, free))
                    .collect(),
            ),
            TNode::Data(name, args) => Type::Data(
                *name,
                args.iter()
                    .map(|a| self.extract_under(*a, binders, next, free))
                    .collect(),
            ),
        }
    }

    // -------------------------------------------------------- normalization

    /// Memoized `nrm⁺` (Fig. 3) at the id level. The first call per id
    /// walks the sub-DAG; later calls are a table lookup. Sub-structural
    /// sharing means a sub-spine occurring under many roots is normalized
    /// once, globally.
    pub fn nrm(&mut self, id: TypeId) -> TypeId {
        StoreOps::nrm(self, id)
    }

    /// Memoized `nrm⁻` (Fig. 3): normalization under a pending `Dual`.
    /// `nrm_neg(t) == nrm(Dual t)` for every id.
    pub fn nrm_neg(&mut self, id: TypeId) -> TypeId {
        StoreOps::nrm_neg(self, id)
    }

    /// The directional operator `−(T)`: `−(−T) = +(T)`, else wrap in `−`.
    pub fn dir_neg(&mut self, id: TypeId) -> TypeId {
        StoreOps::dir_neg(self, id)
    }

    /// The directional operator `+(T)`: `+(−T) = −(T)`, else identity.
    pub fn dir_pos(&mut self, id: TypeId) -> TypeId {
        StoreOps::dir_pos(self, id)
    }

    /// Materialization `§(T).S`: `§(−T).U = ?T.U`, `§(T).U = !T.U`.
    pub fn materialize(&mut self, payload: TypeId, cont: TypeId) -> TypeId {
        StoreOps::materialize(self, payload, cont)
    }

    // ---------------------------------------------------------- equivalence

    /// Decides `T ≡_A U` (Theorems 1–3) as id equality of memoized normal
    /// forms. O(|T| + |U|) on first contact per side, O(1) afterwards.
    pub fn equivalent_ids(&mut self, a: TypeId, b: TypeId) -> bool {
        self.nrm(a) == self.nrm(b)
    }

    /// True when `id` is already recorded as its own normal form — in
    /// that case [`TypeStore::equivalent_ids`] on it is a pure table
    /// lookup and comparison, with no traversal or allocation.
    pub fn is_normalized(&self, id: TypeId) -> bool {
        self.memo_pos[id.index()] == Some(id)
    }

    // --------------------------------------------------------- substitution

    /// Simultaneous substitution of ids for *free* variables.
    ///
    /// Because binders are nameless, capture is impossible: free
    /// variables of the range stay [`TNode::Free`] no matter how many
    /// binders they are spliced under, and `Bound` indices travel with
    /// their own subtree. No renaming, no shifting.
    pub fn subst_free(&mut self, id: TypeId, map: &HashMap<Symbol, TypeId>) -> TypeId {
        StoreOps::subst_free(self, id, map)
    }

    /// β-instantiation of a `∀` id: replaces the bound variable of the
    /// outermost binder of `forall_id` with `arg` in its body. Returns
    /// `None` when `forall_id` is not a `Forall` node.
    ///
    /// `arg` must be binder-closed (every interned top-level type is).
    pub fn instantiate(&mut self, forall_id: TypeId, arg: TypeId) -> Option<TypeId> {
        StoreOps::instantiate(self, forall_id, arg)
    }

    // -------------------------------------------------------------- queries

    /// Tree-node count of the type behind `id` (the Figure-10 x-axis
    /// measure). DAG-aware: shared subtrees are counted per occurrence
    /// but visited once.
    pub fn node_count(&self, id: TypeId) -> u64 {
        let mut memo: HashMap<TypeId, u64> = HashMap::new();
        self.node_count_rec(id, &mut memo)
    }

    fn node_count_rec(&self, id: TypeId, memo: &mut HashMap<TypeId, u64>) -> u64 {
        if let Some(&n) = memo.get(&id) {
            return n;
        }
        let n = match self.node(id) {
            TNode::Unit
            | TNode::Base(_)
            | TNode::Free(_)
            | TNode::Bound(_)
            | TNode::EndIn
            | TNode::EndOut => 1,
            TNode::Arrow(a, b) | TNode::Pair(a, b) | TNode::In(a, b) | TNode::Out(a, b) => {
                let (a, b) = (*a, *b);
                1 + self.node_count_rec(a, memo) + self.node_count_rec(b, memo)
            }
            TNode::Forall(_, t) | TNode::Dual(t) | TNode::Neg(t) => {
                let t = *t;
                1 + self.node_count_rec(t, memo)
            }
            TNode::Proto(_, args) | TNode::Data(_, args) => {
                let args = args.clone();
                1 + args
                    .iter()
                    .map(|a| self.node_count_rec(*a, memo))
                    .sum::<u64>()
            }
        };
        memo.insert(id, n);
        n
    }

    // ------------------------------------------- introspection (testing)

    /// Memo-table counters, for tests and the `algst-conform` fuzzer.
    pub fn introspect(&self) -> StoreIntrospection {
        StoreIntrospection {
            nodes: self.nodes.len(),
            nrm_pos_entries: self.memo_pos.iter().filter(|m| m.is_some()).count(),
            nrm_neg_entries: self.memo_neg.iter().filter(|m| m.is_some()).count(),
            nrm_fixpoints: self
                .memo_pos
                .iter()
                .enumerate()
                .filter(|(i, m)| **m == Some(TypeId::from_index(*i)))
                .count(),
            extract_memo_entries: self.extract_memo.len(),
        }
    }

    /// Deep consistency check of the arena and memo tables, for tests
    /// and fuzzing — **not** a hot-path function (it walks every node
    /// and re-extracts every binder-closed id). Verifies, in order:
    ///
    /// 1. the hash-consing map and arena are inverse bijections;
    /// 2. the arena is topological (children strictly precede parents),
    ///    so ids can never form a cycle;
    /// 3. `needs_binders` agrees with a recomputation from the children;
    /// 4. every `nrm⁺` memo entry is *fixpoint-seeded*: its result id is
    ///    recorded as its own normal form (`nrm(nrm(t)) = nrm(t)` holds
    ///    by table lookup alone) and lies in the normal-form grammar `Q`
    ///    of Lemma 3;
    /// 5. `intern ∘ extract` is the identity on every binder-closed id.
    ///
    /// Returns a description of the first violation found.
    pub fn check_invariants(&mut self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            match self.ids.get(node) {
                Some(id) if id.index() == i => {}
                other => {
                    return Err(format!(
                        "hash-consing map disagrees with arena at t{i}: {other:?}"
                    ))
                }
            }
            for child in node_children(node) {
                if child.index() >= i {
                    return Err(format!("arena not topological: t{i} has child {child:?}"));
                }
            }
            if self.needs_binders[i] != self.compute_needs(node) {
                return Err(format!(
                    "needs_binders stale at t{i}: recorded {}, recomputed {}",
                    self.needs_binders[i],
                    self.compute_needs(node)
                ));
            }
        }
        for i in 0..self.nodes.len() {
            if let Some(n) = self.memo_pos[i] {
                if self.memo_pos[n.index()] != Some(n) {
                    return Err(format!(
                        "nrm memo not fixpoint-seeded: nrm(t{i}) = {n:?} but nrm({n:?}) = {:?}",
                        self.memo_pos[n.index()]
                    ));
                }
                // Open subtrees (escaping de-Bruijn indices) cannot be
                // extracted standalone; their enclosing closed root is
                // checked instead.
                if self.is_binder_closed(n) {
                    let tree = self.extract(n);
                    if !crate::normalize::is_normal(&tree) {
                        return Err(format!(
                            "memoized normal form {n:?} not in grammar Q: {tree}"
                        ));
                    }
                }
            }
        }
        for i in 0..self.nodes.len() {
            let id = TypeId::from_index(i);
            if !self.is_binder_closed(id) {
                continue;
            }
            let tree = self.extract(id);
            let back = self.intern(&tree);
            if back != id {
                return Err(format!(
                    "intern∘extract not the identity: t{i} re-interned as {back:?}"
                ));
            }
        }
        Ok(())
    }
}

/// Child ids of a node, for the introspection walk.
fn node_children(node: &TNode) -> Vec<TypeId> {
    match node {
        TNode::Unit
        | TNode::Base(_)
        | TNode::Free(_)
        | TNode::Bound(_)
        | TNode::EndIn
        | TNode::EndOut => Vec::new(),
        TNode::Arrow(a, b) | TNode::Pair(a, b) | TNode::In(a, b) | TNode::Out(a, b) => {
            vec![*a, *b]
        }
        TNode::Forall(_, t) | TNode::Dual(t) | TNode::Neg(t) => vec![*t],
        TNode::Proto(_, args) | TNode::Data(_, args) => args.clone(),
    }
}

/// Counters returned by [`TypeStore::introspect`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreIntrospection {
    /// Distinct hash-consed nodes in the arena.
    pub nodes: usize,
    /// `nrm⁺` memo entries.
    pub nrm_pos_entries: usize,
    /// `nrm⁻` memo entries.
    pub nrm_neg_entries: usize,
    /// `nrm⁺` entries that map an id to itself (normal forms; always
    /// ≥ half of `nrm_pos_entries` thanks to fixpoint seeding).
    pub nrm_fixpoints: usize,
    /// Cached whole-tree extractions.
    pub extract_memo_entries: usize,
}

// ------------------------------------------------------------- StoreOps

/// The primitive store interface the id-level algorithms are generic
/// over, plus the algorithms themselves as provided methods.
///
/// Two implementations exist: the single-threaded [`TypeStore`] (arena,
/// maps and memos all private to one owner) and the concurrent
/// [`WorkerStore`](crate::shared::WorkerStore) (a per-worker mirror of a
/// process-wide [`SharedStore`](crate::shared::SharedStore), with memo
/// deltas published back). Because `intern`, `nrm⁺`/`nrm⁻`,
/// substitution and β-instantiation are all written once against this
/// trait, the two stores cannot drift semantically: they run the same
/// code over the same [`TNode`] grammar, differing only in where nodes
/// and memo entries live.
///
/// All methods take `&mut self` — even reads — because the concurrent
/// implementation lazily syncs its local mirror on first touch of an id.
pub trait StoreOps {
    /// The node behind `id` (cloned; the concurrent store may first have
    /// to copy it into the local mirror).
    fn node_owned(&mut self, id: TypeId) -> TNode;

    /// Hash-conses `node` into an id. Children of `node` must already be
    /// ids of this store.
    fn mk_node(&mut self, node: TNode) -> TypeId;

    /// `1 + max escaping de-Bruijn index` of the subtree (0 = closed).
    fn binders_needed(&mut self, id: TypeId) -> u32;

    /// Memoized `nrm⁺` entry for `id`, if recorded.
    fn memo_pos_entry(&mut self, id: TypeId) -> Option<TypeId>;

    /// Records `nrm⁺(id) = nf`.
    fn memo_pos_record(&mut self, id: TypeId, nf: TypeId);

    /// Memoized `nrm⁻` entry for `id`, if recorded.
    fn memo_neg_entry(&mut self, id: TypeId) -> Option<TypeId>;

    /// Records `nrm⁻(id) = nf`.
    fn memo_neg_record(&mut self, id: TypeId, nf: TypeId);

    /// Notes the binder name a `Forall` id was first written with
    /// (display-only; implementations may ignore it).
    fn note_binder_hint(&mut self, id: TypeId, name: Symbol);

    // ------------------------------------------------- provided algorithms

    /// Interns a boundary [`Type`] with α-canonical (de Bruijn) binders.
    fn intern(&mut self, t: &Type) -> TypeId
    where
        Self: Sized,
    {
        let mut binders = Vec::new();
        intern_under(self, t, &mut binders)
    }

    /// Memoized `nrm⁺` (Fig. 3) at the id level.
    fn nrm(&mut self, id: TypeId) -> TypeId
    where
        Self: Sized,
    {
        nrm_pos_id(self, id)
    }

    /// Memoized `nrm⁻` (Fig. 3): normalization under a pending `Dual`.
    fn nrm_neg(&mut self, id: TypeId) -> TypeId
    where
        Self: Sized,
    {
        nrm_neg_id(self, id)
    }

    /// The directional operator `−(T)`: `−(−T) = +(T)`, else wrap in `−`.
    fn dir_neg(&mut self, id: TypeId) -> TypeId
    where
        Self: Sized,
    {
        match self.node_owned(id) {
            TNode::Neg(inner) => self.dir_pos(inner),
            _ => self.mk_node(TNode::Neg(id)),
        }
    }

    /// The directional operator `+(T)`: `+(−T) = −(T)`, else identity.
    fn dir_pos(&mut self, id: TypeId) -> TypeId
    where
        Self: Sized,
    {
        match self.node_owned(id) {
            TNode::Neg(inner) => self.dir_neg(inner),
            _ => id,
        }
    }

    /// Materialization `§(T).S`: `§(−T).U = ?T.U`, `§(T).U = !T.U`.
    fn materialize(&mut self, payload: TypeId, cont: TypeId) -> TypeId
    where
        Self: Sized,
    {
        match self.node_owned(payload) {
            TNode::Neg(inner) => self.mk_node(TNode::In(inner, cont)),
            _ => self.mk_node(TNode::Out(payload, cont)),
        }
    }

    /// Decides `T ≡_A U` as id equality of memoized normal forms.
    fn equivalent_ids(&mut self, a: TypeId, b: TypeId) -> bool
    where
        Self: Sized,
    {
        self.nrm(a) == self.nrm(b)
    }

    /// Simultaneous, capture-free substitution of ids for free variables.
    fn subst_free(&mut self, id: TypeId, map: &HashMap<Symbol, TypeId>) -> TypeId
    where
        Self: Sized,
    {
        if map.is_empty() {
            return id;
        }
        let mut memo = HashMap::new();
        subst_free_rec(self, id, map, &mut memo)
    }

    /// β-instantiation of the outermost `∀` binder of `forall_id` with
    /// the binder-closed `arg`; `None` when `forall_id` is not a `Forall`.
    fn instantiate(&mut self, forall_id: TypeId, arg: TypeId) -> Option<TypeId>
    where
        Self: Sized,
    {
        let TNode::Forall(_, body) = self.node_owned(forall_id) else {
            return None;
        };
        debug_assert_eq!(self.binders_needed(arg), 0, "open argument to instantiate");
        let mut memo = HashMap::new();
        Some(replace_bound(self, body, 0, arg, &mut memo))
    }
}

impl StoreOps for TypeStore {
    fn node_owned(&mut self, id: TypeId) -> TNode {
        self.nodes[id.index()].clone()
    }

    fn mk_node(&mut self, node: TNode) -> TypeId {
        self.mk(node)
    }

    fn binders_needed(&mut self, id: TypeId) -> u32 {
        self.needs_binders[id.index()]
    }

    fn memo_pos_entry(&mut self, id: TypeId) -> Option<TypeId> {
        self.memo_pos[id.index()]
    }

    fn memo_pos_record(&mut self, id: TypeId, nf: TypeId) {
        self.memo_pos[id.index()] = Some(nf);
    }

    fn memo_neg_entry(&mut self, id: TypeId) -> Option<TypeId> {
        self.memo_neg[id.index()]
    }

    fn memo_neg_record(&mut self, id: TypeId, nf: TypeId) {
        self.memo_neg[id.index()] = Some(nf);
    }

    fn note_binder_hint(&mut self, id: TypeId, name: Symbol) {
        self.record_binder_hint(id, name);
    }
}

fn intern_under<S: StoreOps>(s: &mut S, t: &Type, binders: &mut Vec<Symbol>) -> TypeId {
    let node = match t {
        Type::Unit => TNode::Unit,
        Type::Base(b) => TNode::Base(*b),
        Type::Var(v) => match binders.iter().rposition(|b| b == v) {
            Some(ix) => TNode::Bound((binders.len() - 1 - ix) as u32),
            None => TNode::Free(*v),
        },
        Type::Arrow(a, b) => {
            let a = intern_under(s, a, binders);
            let b = intern_under(s, b, binders);
            TNode::Arrow(a, b)
        }
        Type::Pair(a, b) => {
            let a = intern_under(s, a, binders);
            let b = intern_under(s, b, binders);
            TNode::Pair(a, b)
        }
        Type::Forall(v, k, body) => {
            binders.push(*v);
            let b = intern_under(s, body, binders);
            binders.pop();
            let id = s.mk_node(TNode::Forall(*k, b));
            s.note_binder_hint(id, *v);
            return id;
        }
        Type::In(p, t) => {
            let p = intern_under(s, p, binders);
            let t = intern_under(s, t, binders);
            TNode::In(p, t)
        }
        Type::Out(p, t) => {
            let p = intern_under(s, p, binders);
            let t = intern_under(s, t, binders);
            TNode::Out(p, t)
        }
        Type::EndIn => TNode::EndIn,
        Type::EndOut => TNode::EndOut,
        Type::Dual(t) => {
            let t = intern_under(s, t, binders);
            TNode::Dual(t)
        }
        Type::Neg(p) => {
            let p = intern_under(s, p, binders);
            TNode::Neg(p)
        }
        Type::Proto(name, args) => {
            let args = args.iter().map(|a| intern_under(s, a, binders)).collect();
            TNode::Proto(*name, args)
        }
        Type::Data(name, args) => {
            let args = args.iter().map(|a| intern_under(s, a, binders)).collect();
            TNode::Data(*name, args)
        }
    };
    s.mk_node(node)
}

fn nrm_pos_id<S: StoreOps>(s: &mut S, id: TypeId) -> TypeId {
    if let Some(n) = s.memo_pos_entry(id) {
        return n;
    }
    let n = match s.node_owned(id) {
        TNode::Unit
        | TNode::Base(_)
        | TNode::Free(_)
        | TNode::Bound(_)
        | TNode::EndIn
        | TNode::EndOut => id,
        TNode::Arrow(a, b) => {
            let (a, b) = (nrm_pos_id(s, a), nrm_pos_id(s, b));
            s.mk_node(TNode::Arrow(a, b))
        }
        TNode::Pair(a, b) => {
            let (a, b) = (nrm_pos_id(s, a), nrm_pos_id(s, b));
            s.mk_node(TNode::Pair(a, b))
        }
        TNode::Forall(k, body) => {
            let body = nrm_pos_id(s, body);
            s.mk_node(TNode::Forall(k, body))
        }
        // nrm⁺(?T.S) = §(−(nrm⁺ T)).nrm⁺ S
        TNode::In(p, t) => {
            let p = nrm_pos_id(s, p);
            let p = s.dir_neg(p);
            let t = nrm_pos_id(s, t);
            s.materialize(p, t)
        }
        // nrm⁺(!T.S) = §(+(nrm⁺ T)).nrm⁺ S
        TNode::Out(p, t) => {
            let p = nrm_pos_id(s, p);
            let p = s.dir_pos(p);
            let t = nrm_pos_id(s, t);
            s.materialize(p, t)
        }
        TNode::Dual(t) => nrm_neg_id(s, t),
        TNode::Proto(name, args) => {
            let args = args.into_iter().map(|a| nrm_pos_id(s, a)).collect();
            s.mk_node(TNode::Proto(name, args))
        }
        TNode::Data(name, args) => {
            let args = args.into_iter().map(|a| nrm_pos_id(s, a)).collect();
            s.mk_node(TNode::Data(name, args))
        }
        // nrm⁺(−T) = −(nrm⁺ T)
        TNode::Neg(inner) => {
            let inner = nrm_pos_id(s, inner);
            s.dir_neg(inner)
        }
    };
    s.memo_pos_record(id, n);
    // Fixpoint seeding: the result is a normal form, so nrm(n) = n.
    s.memo_pos_record(n, n);
    n
}

fn nrm_neg_id<S: StoreOps>(s: &mut S, id: TypeId) -> TypeId {
    if let Some(n) = s.memo_neg_entry(id) {
        return n;
    }
    let n = match s.node_owned(id) {
        TNode::Dual(t) => nrm_pos_id(s, t),
        // Reify the pending dual on a variable at the end of a spine.
        TNode::Free(_) | TNode::Bound(_) => s.mk_node(TNode::Dual(id)),
        // nrm⁻(?T.S) = §(+(nrm⁺ T)).nrm⁻ S
        TNode::In(p, t) => {
            let p = nrm_pos_id(s, p);
            let p = s.dir_pos(p);
            let t = nrm_neg_id(s, t);
            s.materialize(p, t)
        }
        // nrm⁻(!T.S) = §(−(nrm⁺ T)).nrm⁻ S
        TNode::Out(p, t) => {
            let p = nrm_pos_id(s, p);
            let p = s.dir_neg(p);
            let t = nrm_neg_id(s, t);
            s.materialize(p, t)
        }
        TNode::EndIn => s.mk_node(TNode::EndOut),
        TNode::EndOut => s.mk_node(TNode::EndIn),
        // Non-session constructors: reify the dual on the positive
        // normal form (ill-kinded; rejected by kind checking anyway).
        _ => {
            let n = nrm_pos_id(s, id);
            s.mk_node(TNode::Dual(n))
        }
    };
    s.memo_neg_record(id, n);
    n
}

fn subst_free_rec<S: StoreOps>(
    s: &mut S,
    id: TypeId,
    map: &HashMap<Symbol, TypeId>,
    memo: &mut HashMap<TypeId, TypeId>,
) -> TypeId {
    if let Some(&r) = memo.get(&id) {
        return r;
    }
    let r = match s.node_owned(id) {
        TNode::Free(v) => map.get(&v).copied().unwrap_or(id),
        TNode::Unit | TNode::Base(_) | TNode::Bound(_) | TNode::EndIn | TNode::EndOut => id,
        TNode::Arrow(a, b) => {
            let a = subst_free_rec(s, a, map, memo);
            let b = subst_free_rec(s, b, map, memo);
            s.mk_node(TNode::Arrow(a, b))
        }
        TNode::Pair(a, b) => {
            let a = subst_free_rec(s, a, map, memo);
            let b = subst_free_rec(s, b, map, memo);
            s.mk_node(TNode::Pair(a, b))
        }
        TNode::Forall(k, body) => {
            let body = subst_free_rec(s, body, map, memo);
            s.mk_node(TNode::Forall(k, body))
        }
        TNode::In(p, t) => {
            let p = subst_free_rec(s, p, map, memo);
            let t = subst_free_rec(s, t, map, memo);
            s.mk_node(TNode::In(p, t))
        }
        TNode::Out(p, t) => {
            let p = subst_free_rec(s, p, map, memo);
            let t = subst_free_rec(s, t, map, memo);
            s.mk_node(TNode::Out(p, t))
        }
        TNode::Dual(t) => {
            let t = subst_free_rec(s, t, map, memo);
            s.mk_node(TNode::Dual(t))
        }
        TNode::Neg(p) => {
            let p = subst_free_rec(s, p, map, memo);
            s.mk_node(TNode::Neg(p))
        }
        TNode::Proto(name, args) => {
            let args = args
                .into_iter()
                .map(|a| subst_free_rec(s, a, map, memo))
                .collect();
            s.mk_node(TNode::Proto(name, args))
        }
        TNode::Data(name, args) => {
            let args = args
                .into_iter()
                .map(|a| subst_free_rec(s, a, map, memo))
                .collect();
            s.mk_node(TNode::Data(name, args))
        }
    };
    memo.insert(id, r);
    r
}

fn replace_bound<S: StoreOps>(
    s: &mut S,
    id: TypeId,
    depth: u32,
    arg: TypeId,
    memo: &mut HashMap<(TypeId, u32), TypeId>,
) -> TypeId {
    // A subtree that cannot reach the target binder is unchanged —
    // this also makes the memo sound for subtrees shared at several
    // depths (they are all in this closed class or keyed by depth).
    if s.binders_needed(id) <= depth {
        return id;
    }
    if let Some(&r) = memo.get(&(id, depth)) {
        return r;
    }
    let r = match s.node_owned(id) {
        TNode::Bound(i) if i == depth => arg,
        // An index above the eliminated binder steps down by one.
        TNode::Bound(i) if i > depth => s.mk_node(TNode::Bound(i - 1)),
        TNode::Bound(_) => id,
        TNode::Forall(k, body) => {
            let body = replace_bound(s, body, depth + 1, arg, memo);
            s.mk_node(TNode::Forall(k, body))
        }
        TNode::Arrow(a, b) => {
            let a = replace_bound(s, a, depth, arg, memo);
            let b = replace_bound(s, b, depth, arg, memo);
            s.mk_node(TNode::Arrow(a, b))
        }
        TNode::Pair(a, b) => {
            let a = replace_bound(s, a, depth, arg, memo);
            let b = replace_bound(s, b, depth, arg, memo);
            s.mk_node(TNode::Pair(a, b))
        }
        TNode::In(p, t) => {
            let p = replace_bound(s, p, depth, arg, memo);
            let t = replace_bound(s, t, depth, arg, memo);
            s.mk_node(TNode::In(p, t))
        }
        TNode::Out(p, t) => {
            let p = replace_bound(s, p, depth, arg, memo);
            let t = replace_bound(s, t, depth, arg, memo);
            s.mk_node(TNode::Out(p, t))
        }
        TNode::Dual(t) => {
            let t = replace_bound(s, t, depth, arg, memo);
            s.mk_node(TNode::Dual(t))
        }
        TNode::Neg(p) => {
            let p = replace_bound(s, p, depth, arg, memo);
            s.mk_node(TNode::Neg(p))
        }
        TNode::Proto(name, args) => {
            let args = args
                .into_iter()
                .map(|a| replace_bound(s, a, depth, arg, memo))
                .collect();
            s.mk_node(TNode::Proto(name, args))
        }
        TNode::Data(name, args) => {
            let args = args
                .into_iter()
                .map(|a| replace_bound(s, a, depth, arg, memo))
                .collect();
            s.mk_node(TNode::Data(name, args))
        }
        TNode::Unit | TNode::Base(_) | TNode::Free(_) | TNode::EndIn | TNode::EndOut => {
            unreachable!("leaf nodes need no binders")
        }
    };
    memo.insert((id, depth), r);
    r
}

/// Canonical binder names for extraction: `a`, `b`, …, `z`, `a1`, `b1`, …
/// skipping names that occur free in the type being extracted or are
/// already bound in the enclosing scope (hinted names included).
fn canonical_binder(next: &mut usize, binders: &[Symbol], free: &HashSet<Symbol>) -> Symbol {
    loop {
        let i = *next;
        *next += 1;
        let letter = (b'a' + (i % 26) as u8) as char;
        let name = if i < 26 {
            letter.to_string()
        } else {
            format!("{letter}{}", i / 26)
        };
        let sym = Symbol::intern(&name);
        if !free.contains(&sym) && !binders.contains(&sym) {
            return sym;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::nrm_pos;

    #[test]
    fn invariants_hold_after_mixed_use() {
        let mut s = TypeStore::new();
        let t = Type::dual(Type::output(
            Type::neg(Type::int()),
            Type::input(Type::bool(), Type::var("s")),
        ));
        let u = Type::forall(
            "s",
            Kind::Session,
            Type::arrow(Type::input(Type::int(), Type::var("s")), Type::var("s")),
        );
        let (a, b) = (s.intern(&t), s.intern(&u));
        s.equivalent_ids(a, b);
        let n = s.nrm_neg(a);
        s.extract_cached(n);
        s.check_invariants().expect("store invariants violated");
        let intro = s.introspect();
        assert!(intro.nodes > 0 && intro.nrm_pos_entries > 0);
        assert!(
            intro.nrm_fixpoints > 0,
            "fixpoint seeding must record normal forms as their own nrm"
        );
    }

    #[test]
    fn introspection_counts_memo_growth() {
        let mut s = TypeStore::new();
        let id = s.intern(&Type::output(Type::int(), Type::EndOut));
        let before = s.introspect();
        assert_eq!(before.nrm_pos_entries, 0);
        s.nrm(id);
        let after = s.introspect();
        assert!(after.nrm_pos_entries > before.nrm_pos_entries);
        s.check_invariants().expect("store invariants violated");
    }

    #[test]
    fn hash_consing_dedupes() {
        let mut s = TypeStore::new();
        let a = s.intern(&Type::output(Type::int(), Type::EndOut));
        let b = s.intern(&Type::output(Type::int(), Type::EndOut));
        assert_eq!(a, b);
        // Shared subterms too: exactly Int, End!, and the Out node.
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn alpha_equivalent_types_share_an_id() {
        let mut s = TypeStore::new();
        let t = Type::forall("x", Kind::Session, Type::var("x"));
        let u = Type::forall("y", Kind::Session, Type::var("y"));
        assert_eq!(s.intern(&t), s.intern(&u));
        // ...but a free occurrence is different from a bound one.
        let v = Type::forall("x", Kind::Session, Type::var("z"));
        assert_ne!(s.intern(&t), s.intern(&v));
    }

    #[test]
    fn shadowing_respected() {
        let mut s = TypeStore::new();
        // ∀a.∀a.a  =α  ∀b.∀c.c   but  ≠α  ∀a.∀b.a
        let t = Type::forall(
            "a",
            Kind::Session,
            Type::forall("a", Kind::Session, Type::var("a")),
        );
        let u = Type::forall(
            "b",
            Kind::Session,
            Type::forall("c", Kind::Session, Type::var("c")),
        );
        let v = Type::forall(
            "a",
            Kind::Session,
            Type::forall("b", Kind::Session, Type::var("a")),
        );
        assert_eq!(s.intern(&t), s.intern(&u));
        assert_ne!(s.intern(&t), s.intern(&v));
    }

    #[test]
    fn extract_round_trips_alpha_equivalently() {
        let mut s = TypeStore::new();
        let t = Type::forall(
            "s",
            Kind::Session,
            Type::arrow(
                Type::input(Type::neg(Type::int()), Type::var("s")),
                Type::dual(Type::var("s")),
            ),
        );
        let id = s.intern(&t);
        let back = s.extract(id);
        assert!(t.alpha_eq(&back), "{t}  vs  {back}");
        assert_eq!(s.intern(&back), id);
    }

    #[test]
    fn extraction_avoids_capturing_free_vars() {
        let mut s = TypeStore::new();
        // ∀x. x ⊗ a  — the canonical binder must not be named `a`.
        let t = Type::forall("x", Kind::Value, Type::pair(Type::var("x"), Type::var("a")));
        let id = s.intern(&t);
        let back = s.extract(id);
        assert!(t.alpha_eq(&back), "{t}  vs  {back}");
    }

    #[test]
    fn extraction_prefers_the_written_binder_name() {
        let mut s = TypeStore::new();
        let t = Type::forall(
            "sess",
            Kind::Session,
            Type::arrow(Type::var("sess"), Type::var("sess")),
        );
        let id = s.intern(&t);
        assert_eq!(s.extract(id).to_string(), "forall (sess:S). sess -> sess");
        // The hint is first-intern-wins: an α-equal type written with a
        // different name shares the id, hence the display name.
        let u = Type::forall(
            "other",
            Kind::Session,
            Type::arrow(Type::var("other"), Type::var("other")),
        );
        assert_eq!(s.intern(&u), id);
        assert_eq!(s.extract(id).to_string(), "forall (sess:S). sess -> sess");
        // A hint that would capture a free variable is dropped.
        let v = Type::forall(
            "fv",
            Kind::Value,
            Type::pair(Type::var("fv"), Type::var("x")),
        );
        let w = Type::forall(
            "x",
            Kind::Value,
            Type::pair(Type::var("x"), Type::var("x2")),
        );
        let vid = s.intern(&v);
        let back = s.extract(vid);
        assert!(v.alpha_eq(&back));
        let wid = s.intern(&w);
        let back = s.extract(wid);
        assert!(w.alpha_eq(&back), "{w} vs {back}");
    }

    #[test]
    fn extract_cached_returns_the_same_tree() {
        let mut s = TypeStore::new();
        let t = Type::forall(
            "s",
            Kind::Session,
            Type::output(Type::int(), Type::var("s")),
        );
        let id = s.intern(&t);
        let a = s.extract_cached(id);
        let b = s.extract_cached(id);
        assert_eq!(a, b);
        assert!(a.alpha_eq(&t));
    }

    #[test]
    fn store_nrm_agrees_with_tree_nrm() {
        let samples = vec![
            Type::dual(Type::input(Type::neg(Type::int()), Type::var("a"))),
            Type::dual(Type::dual(Type::output(Type::int(), Type::EndIn))),
            Type::proto("PQ", vec![Type::neg(Type::neg(Type::neg(Type::int())))]),
            Type::forall(
                "s",
                Kind::Session,
                Type::arrow(
                    Type::dual(Type::output(Type::int(), Type::var("s"))),
                    Type::var("s"),
                ),
            ),
        ];
        let mut s = TypeStore::new();
        for t in samples {
            let via_store = s.intern(&t);
            let via_store = s.nrm(via_store);
            let via_tree = s.intern(&nrm_pos(&t));
            assert_eq!(via_store, via_tree, "mismatch on {t}");
        }
    }

    #[test]
    fn nrm_is_a_fixpoint_by_construction() {
        let mut s = TypeStore::new();
        let t = Type::dual(Type::input(Type::neg(Type::int()), Type::var("a")));
        let id = s.intern(&t);
        let n = s.nrm(id);
        assert_eq!(s.nrm(n), n);
        assert!(s.is_normalized(n));
    }

    #[test]
    fn equivalence_is_id_equality_of_normal_forms() {
        let mut s = TypeStore::new();
        let t = s.intern(&Type::dual(Type::input(Type::int(), Type::EndIn)));
        let u = s.intern(&Type::output(Type::int(), Type::dual(Type::EndIn)));
        assert!(s.equivalent_ids(t, u));
        let v = s.intern(&Type::output(Type::bool(), Type::EndOut));
        assert!(!s.equivalent_ids(t, v));
    }

    #[test]
    fn subst_free_is_capture_free() {
        let mut s = TypeStore::new();
        // (∀b. a -> b)[b/a]: nameless binders cannot capture.
        let t = Type::forall(
            "b",
            Kind::Session,
            Type::arrow(Type::var("a"), Type::var("b")),
        );
        let id = s.intern(&t);
        let b = s.mk(TNode::Free(Symbol::intern("b")));
        let map = HashMap::from([(Symbol::intern("a"), b)]);
        let r = s.subst_free(id, &map);
        let expected = Type::forall(
            "c",
            Kind::Session,
            Type::arrow(Type::var("b"), Type::var("c")),
        );
        assert_eq!(r, s.intern(&expected));
    }

    #[test]
    fn instantiate_beta_reduces() {
        let mut s = TypeStore::new();
        // (∀s. !Int.s)[End!/s] = !Int.End!
        let t = Type::forall(
            "s",
            Kind::Session,
            Type::output(Type::int(), Type::var("s")),
        );
        let id = s.intern(&t);
        let arg = s.intern(&Type::EndOut);
        let r = s.instantiate(id, arg).expect("forall");
        assert_eq!(r, s.intern(&Type::output(Type::int(), Type::EndOut)));
        // Not a forall:
        assert!(s.instantiate(arg, id).is_none());
    }

    #[test]
    fn instantiate_under_nested_binders() {
        let mut s = TypeStore::new();
        // (∀a. ∀b. a ⊗ b)[Int/a] = ∀b. Int ⊗ b
        let t = Type::forall(
            "a",
            Kind::Value,
            Type::forall("b", Kind::Value, Type::pair(Type::var("a"), Type::var("b"))),
        );
        let id = s.intern(&t);
        let arg = s.intern(&Type::int());
        let r = s.instantiate(id, arg).expect("forall");
        let expected = Type::forall("b", Kind::Value, Type::pair(Type::int(), Type::var("b")));
        assert_eq!(r, s.intern(&expected));
    }

    #[test]
    fn node_count_matches_tree_count() {
        let mut s = TypeStore::new();
        let t = Type::dual(Type::output(
            Type::proto("PC", vec![Type::int(), Type::neg(Type::bool())]),
            Type::EndOut,
        ));
        let id = s.intern(&t);
        assert_eq!(s.node_count(id), t.node_count() as u64);
    }

    #[test]
    fn needs_binders_tracks_escaping_indices() {
        let mut s = TypeStore::new();
        let closed = s.intern(&Type::forall("a", Kind::Value, Type::var("a")));
        assert!(s.is_binder_closed(closed));
        let body = match *s.node(closed) {
            TNode::Forall(_, b) => b,
            _ => unreachable!(),
        };
        assert!(!s.is_binder_closed(body));
    }
}
