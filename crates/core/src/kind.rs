//! The kind structure of AlgST (paper Section 3).
//!
//! AlgST distinguishes three kinds, linearly ordered by subkinding
//! `S < T < P`:
//!
//! * [`Kind::Session`] (`S`) classifies session types — types of channel
//!   endpoints.
//! * [`Kind::Value`] (`T`) classifies all types of run-time values
//!   (functional types *and* session types, by subsumption).
//! * [`Kind::Protocol`] (`P`) classifies protocol types, which describe pure
//!   behaviour and have no run-time inhabitants. Every type lifts into `P`.

use std::fmt;

/// One of the three AlgST kinds, `S < T < P`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Kind {
    /// `S` — session types.
    Session,
    /// `T` — types of run-time values.
    Value,
    /// `P` — protocol types.
    Protocol,
}

impl Kind {
    /// Subkinding: reflexive-transitive closure of `S < T < P`.
    ///
    /// ```
    /// use algst_core::kind::Kind;
    /// assert!(Kind::Session.is_subkind_of(Kind::Protocol));
    /// assert!(!Kind::Protocol.is_subkind_of(Kind::Value));
    /// ```
    pub fn is_subkind_of(self, other: Kind) -> bool {
        self <= other
    }

    /// Least upper bound in the linear order.
    pub fn lub(self, other: Kind) -> Kind {
        self.max(other)
    }

    /// The surface-syntax letter for this kind.
    pub fn letter(self) -> char {
        match self {
            Kind::Session => 'S',
            Kind::Value => 'T',
            Kind::Protocol => 'P',
        }
    }

    /// Parses a surface-syntax kind letter.
    pub fn from_letter(c: char) -> Option<Kind> {
        match c {
            'S' => Some(Kind::Session),
            'T' => Some(Kind::Value),
            'P' => Some(Kind::Protocol),
            _ => None,
        }
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_order() {
        use Kind::*;
        assert!(Session.is_subkind_of(Session));
        assert!(Session.is_subkind_of(Value));
        assert!(Session.is_subkind_of(Protocol));
        assert!(Value.is_subkind_of(Protocol));
        assert!(!Value.is_subkind_of(Session));
        assert!(!Protocol.is_subkind_of(Session));
        assert!(!Protocol.is_subkind_of(Value));
    }

    #[test]
    fn lub_is_max() {
        use Kind::*;
        assert_eq!(Session.lub(Protocol), Protocol);
        assert_eq!(Value.lub(Session), Value);
    }

    #[test]
    fn letters_roundtrip() {
        for k in [Kind::Session, Kind::Value, Kind::Protocol] {
            assert_eq!(Kind::from_letter(k.letter()), Some(k));
        }
        assert_eq!(Kind::from_letter('Q'), None);
    }
}
