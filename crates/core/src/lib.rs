//! # algst-core
//!
//! Core type structure of **AlgST** — the calculus of *Parameterized
//! Algebraic Protocols* (Mordido, Spaderna, Thiemann, Vasconcelos,
//! PLDI 2023).
//!
//! This crate implements the paper's Section 3 and the expression grammar
//! of Section 4:
//!
//! * [`kind`] — the kinds `S < T < P` and subkinding.
//! * [`types`] — the type grammar (functional, session, and protocol
//!   types).
//! * [`protocol`] — algebraic protocol (`protocol ρ ᾱ = …`) and datatype
//!   declarations with globally unique tags.
//! * [`kindcheck`] — algorithmic type formation (Fig. 1).
//! * [`normalize`] — the normalization functions `nrm⁺`/`nrm⁻`,
//!   materialization `§(T).S` and the directional operators `±(T)`
//!   (Fig. 3).
//! * [`store`] — the hash-consed type store: `Type` interned to
//!   [`store::TypeId`] with canonical (de-Bruijn) binders, memoized
//!   normalization, and O(1) amortized equivalence.
//! * [`shared`] — the **sharded concurrent** lift of the store: a
//!   process-wide append-only arena + memo shards
//!   ([`shared::SharedStore`]) with per-thread mirrors that publish
//!   write deltas ([`shared::WorkerStore`]), so every thread shares
//!   warm state.
//! * [`session`] — the public entry point: an explicit [`Session`]
//!   handle owning a worker over a shared store. All of
//!   intern/normalize/equivalence/duality run against *its* store;
//!   sessions are isolated unless deliberately made siblings.
//! * [`conversion`] — the declarative conversion relation (Fig. 2) as a
//!   rewrite system, used for testing and benchmark-instance generation.
//! * [`expr`] — core expressions, constants and processes (Section 4).
//! * [`subst`], [`symbol`] — supporting infrastructure.
//!
//! ## Example
//!
//! ```
//! use algst_core::{Session, types::Type};
//!
//! // Dual (?(-Int).End?)  ≡  !(-Int).Dual End?  ≡  ?Int.End!
//! let mut session = Session::new();
//! let t = Type::dual(Type::input(Type::neg(Type::int()), Type::EndIn));
//! let u = Type::input(Type::int(), Type::EndOut);
//! assert!(session.equivalent(&t, &u));
//! ```

pub mod conversion;
pub mod expr;
pub mod kind;
pub mod kindcheck;
pub mod normalize;
pub mod protocol;
pub mod session;
pub mod shared;
pub mod store;
pub mod subst;
pub mod symbol;
pub mod types;

pub use kind::Kind;
pub use normalize::{nrm_neg, nrm_pos};
pub use protocol::{Ctor, DataDecl, Declarations, ProtocolDecl};
pub use session::Session;
pub use store::{TNode, TypeId, TypeStore};
pub use symbol::Symbol;
pub use types::Type;
