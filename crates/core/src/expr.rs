//! The core expression and process language (paper Section 4).
//!
//! ```text
//! c ::= * | fork | new | receive | send | selectC | wait | terminate
//! e ::= v | e e | e[T] | let * = e in e | ⟨e,e⟩ | let ⟨x,x⟩ = e in e
//!     | match e with {Cᵢ xᵢ → eᵢ}
//! p ::= ⟨e⟩ | p|p | (νxy)p
//! ```
//!
//! Extensions matching the paper's artifact: literals, arithmetic and
//! comparison builtins, `let`, `if`, saturated data constructors and `case`
//! over datatypes (the `Case` node doubles as the session `match`; the
//! typechecker dispatches on the scrutinee's type, mirroring the artifact's
//! overloaded `case`/`match`).

use crate::kind::Kind;
use crate::symbol::Symbol;
use crate::types::Type;
use std::fmt;
use std::sync::Arc;

/// Literal values.
#[derive(Clone, Debug, PartialEq)]
pub enum Lit {
    Unit,
    Int(i64),
    Bool(bool),
    Char(char),
    Str(String),
}

impl Lit {
    /// The type of this literal.
    pub fn type_of(&self) -> Type {
        match self {
            Lit::Unit => Type::Unit,
            Lit::Int(_) => Type::int(),
            Lit::Bool(_) => Type::bool(),
            Lit::Char(_) => Type::char(),
            Lit::Str(_) => Type::string(),
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Unit => write!(f, "()"),
            Lit::Int(n) => write!(f, "{n}"),
            Lit::Bool(b) => write!(f, "{b}"),
            Lit::Char(c) => write!(f, "{c:?}"),
            Lit::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// Session and concurrency constants (paper Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Const {
    /// `fork : (Unit → Unit) → Unit`
    Fork,
    /// `new : ∀α:S. α ⊗ Dual α`
    New,
    /// `receive : ∀α:T.∀β:S. ?α.β → α ⊗ β`
    Receive,
    /// `send : ∀α:T.∀β:S. α → !α.β → β`
    Send,
    /// `wait : End? → Unit`
    Wait,
    /// `terminate : End! → Unit`
    Terminate,
    /// `select Cₖ : ∀ᾱ:P.∀β:S. !(ρ ᾱ).β → §(+(T̄ₖ)).β`
    Select(Symbol),
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Fork => write!(f, "fork"),
            Const::New => write!(f, "new"),
            Const::Receive => write!(f, "receive"),
            Const::Send => write!(f, "send"),
            Const::Wait => write!(f, "wait"),
            Const::Terminate => write!(f, "terminate"),
            Const::Select(tag) => write!(f, "select {tag}"),
        }
    }
}

/// Pure builtin operations (implementation extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Negate,
    Eq,
    Neq,
    Lt,
    Leq,
    Gt,
    Geq,
    Not,
    And,
    Or,
    /// `printInt : Int → Unit` (writes to stdout; used by examples)
    PrintInt,
    /// `printStr : String → Unit`
    PrintStr,
    /// `intToStr : Int → String`
    IntToStr,
}

impl Builtin {
    /// Binary operator spelled with this surface name, if any.
    pub fn from_operator(op: &str) -> Option<Builtin> {
        Some(match op {
            "+" => Builtin::Add,
            "-" => Builtin::Sub,
            "*" => Builtin::Mul,
            "/" => Builtin::Div,
            "%" => Builtin::Mod,
            "==" => Builtin::Eq,
            "/=" => Builtin::Neq,
            "<" => Builtin::Lt,
            "<=" => Builtin::Leq,
            ">" => Builtin::Gt,
            ">=" => Builtin::Geq,
            "&&" => Builtin::And,
            "||" => Builtin::Or,
            _ => return None,
        })
    }

    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "negate" => Builtin::Negate,
            "not" => Builtin::Not,
            "printInt" => Builtin::PrintInt,
            "printStr" => Builtin::PrintStr,
            "intToStr" => Builtin::IntToStr,
            _ => return None,
        })
    }

    /// The (unrestricted) type of this builtin.
    pub fn type_of(self) -> Type {
        use Builtin::*;
        let int = Type::int();
        let boolean = Type::bool();
        match self {
            Add | Sub | Mul | Div | Mod => Type::arrow(int.clone(), Type::arrow(int.clone(), int)),
            Negate => Type::arrow(int.clone(), int),
            Eq | Neq | Lt | Leq | Gt | Geq => Type::arrow(int.clone(), Type::arrow(int, boolean)),
            Not => Type::arrow(boolean.clone(), boolean),
            And | Or => Type::arrow(boolean.clone(), Type::arrow(boolean.clone(), boolean)),
            PrintInt => Type::arrow(int, Type::Unit),
            PrintStr => Type::arrow(Type::string(), Type::Unit),
            IntToStr => Type::arrow(int, Type::string()),
        }
    }

    /// Number of arguments needed before the builtin computes.
    pub fn arity(self) -> usize {
        use Builtin::*;
        match self {
            Negate | Not | PrintInt | PrintStr | IntToStr => 1,
            _ => 2,
        }
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Builtin::Add => "+",
            Builtin::Sub => "-",
            Builtin::Mul => "*",
            Builtin::Div => "/",
            Builtin::Mod => "%",
            Builtin::Negate => "negate",
            Builtin::Eq => "==",
            Builtin::Neq => "/=",
            Builtin::Lt => "<",
            Builtin::Leq => "<=",
            Builtin::Gt => ">",
            Builtin::Geq => ">=",
            Builtin::Not => "not",
            Builtin::And => "&&",
            Builtin::Or => "||",
            Builtin::PrintInt => "printInt",
            Builtin::PrintStr => "printStr",
            Builtin::IntToStr => "intToStr",
        };
        f.write_str(s)
    }
}

/// One arm of a `case`/`match`: `C x̄ → e`.
///
/// For a session `match` there is exactly one binder — the channel,
/// rebound at its continuation type. For a datatype `case` the binders
/// receive the constructor's fields.
#[derive(Clone, Debug, PartialEq)]
pub struct Arm {
    pub tag: Symbol,
    pub binders: Vec<Symbol>,
    pub body: Expr,
}

/// A core expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Lit(Lit),
    Const(Const),
    Builtin(Builtin),
    Var(Symbol),
    /// `λx:T. e`
    Abs(Symbol, Arc<Type>, Arc<Expr>),
    /// `λx. e` — unannotated abstraction; has no synthesis rule and is
    /// checked against an arrow type (rule E-Abs' of Section 5).
    AbsU(Symbol, Arc<Expr>),
    /// `e₁ e₂`
    App(Arc<Expr>, Arc<Expr>),
    /// `Λα:κ. v`
    TAbs(Symbol, Kind, Arc<Expr>),
    /// `e [T]`
    TApp(Arc<Expr>, Arc<Type>),
    /// `rec x:T. v` — unrestricted recursive binding (rule E-Rec).
    Rec(Symbol, Arc<Type>, Arc<Expr>),
    /// `⟨e₁, e₂⟩`
    Pair(Arc<Expr>, Arc<Expr>),
    /// `let ⟨x, y⟩ = e₁ in e₂`
    LetPair(Symbol, Symbol, Arc<Expr>, Arc<Expr>),
    /// `let * = e₁ in e₂`
    LetUnit(Arc<Expr>, Arc<Expr>),
    /// `let x = e₁ in e₂` (sugar for `(λx.e₂) e₁` but kept first-class so
    /// the checker can synthesize without an annotation)
    Let(Symbol, Arc<Expr>, Arc<Expr>),
    /// `if e then e else e` (extension)
    If(Arc<Expr>, Arc<Expr>, Arc<Expr>),
    /// Saturated data constructor application `C ē` (extension).
    Con(Symbol, Vec<Expr>),
    /// `match e with {Cᵢ xᵢ → eᵢ}` over a channel, or `case e of …` over a
    /// datatype — disambiguated by the scrutinee's type.
    Case(Arc<Expr>, Vec<Arm>),
}

impl Expr {
    pub fn var(name: impl Into<Symbol>) -> Expr {
        Expr::Var(name.into())
    }
    pub fn abs(param: impl Into<Symbol>, ty: Type, body: Expr) -> Expr {
        Expr::Abs(param.into(), Arc::new(ty), Arc::new(body))
    }
    pub fn abs_u(param: impl Into<Symbol>, body: Expr) -> Expr {
        Expr::AbsU(param.into(), Arc::new(body))
    }
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Arc::new(f), Arc::new(a))
    }
    /// n-ary application.
    pub fn apps(f: Expr, args: impl IntoIterator<Item = Expr>) -> Expr {
        args.into_iter().fold(f, Expr::app)
    }
    pub fn tabs(var: impl Into<Symbol>, kind: Kind, body: Expr) -> Expr {
        Expr::TAbs(var.into(), kind, Arc::new(body))
    }
    pub fn tapp(f: Expr, ty: Type) -> Expr {
        Expr::TApp(Arc::new(f), Arc::new(ty))
    }
    pub fn tapps(f: Expr, tys: impl IntoIterator<Item = Type>) -> Expr {
        tys.into_iter().fold(f, Expr::tapp)
    }
    pub fn rec(name: impl Into<Symbol>, ty: Type, body: Expr) -> Expr {
        Expr::Rec(name.into(), Arc::new(ty), Arc::new(body))
    }
    pub fn pair(a: Expr, b: Expr) -> Expr {
        Expr::Pair(Arc::new(a), Arc::new(b))
    }
    pub fn let_pair(x: impl Into<Symbol>, y: impl Into<Symbol>, bound: Expr, body: Expr) -> Expr {
        Expr::LetPair(x.into(), y.into(), Arc::new(bound), Arc::new(body))
    }
    pub fn let_unit(bound: Expr, body: Expr) -> Expr {
        Expr::LetUnit(Arc::new(bound), Arc::new(body))
    }
    pub fn let_(x: impl Into<Symbol>, bound: Expr, body: Expr) -> Expr {
        Expr::Let(x.into(), Arc::new(bound), Arc::new(body))
    }
    pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Arc::new(c), Arc::new(t), Arc::new(e))
    }
    pub fn case(scrutinee: Expr, arms: Vec<Arm>) -> Expr {
        Expr::Case(Arc::new(scrutinee), arms)
    }
    pub fn int(n: i64) -> Expr {
        Expr::Lit(Lit::Int(n))
    }
    pub fn unit() -> Expr {
        Expr::Lit(Lit::Unit)
    }
    pub fn select(tag: impl Into<Symbol>) -> Expr {
        Expr::Const(Const::Select(tag.into()))
    }

    /// Syntactic values `v` of the paper's grammar (used by the value
    /// restriction in rule E-TAbs and by the LTS).
    pub fn is_value(&self) -> bool {
        match self {
            Expr::Lit(_) | Expr::Const(_) | Expr::Builtin(_) | Expr::Var(_) => true,
            Expr::Abs(..) | Expr::AbsU(..) | Expr::TAbs(..) | Expr::Rec(..) => true,
            Expr::Pair(a, b) => a.is_value() && b.is_value(),
            Expr::Con(_, args) => args.iter().all(Expr::is_value),
            // Partial applications of constants are values
            // (e.g. `send [T] [U] v`).
            Expr::App(..) | Expr::TApp(..) => self.is_partial_constant(),
            _ => false,
        }
    }

    /// Is this a constant (or builtin) applied to fewer arguments than it
    /// needs? Those are values per the paper's grammar
    /// (`send[T][U] v` etc.).
    fn is_partial_constant(&self) -> bool {
        fn head_and_args(e: &Expr) -> Option<(&Expr, usize)> {
            match e {
                Expr::Const(_) | Expr::Builtin(_) => Some((e, 0)),
                Expr::App(f, a) if a.is_value() => head_and_args(f).map(|(h, n)| (h, n + 1)),
                Expr::TApp(f, _) => head_and_args(f),
                _ => None,
            }
        }
        match head_and_args(self) {
            Some((Expr::Const(c), n)) => {
                let needed = match c {
                    Const::Fork | Const::Wait | Const::Terminate => 1,
                    Const::New => 0,
                    Const::Receive => 1,
                    Const::Send => 2,
                    Const::Select(_) => 1,
                };
                n < needed
            }
            Some((Expr::Builtin(b), n)) => n < b.arity(),
            _ => false,
        }
    }
}

/// A process (paper Section 4): threads, parallel composition and channel
/// restriction. Processes are a run-time artifact; the annotation on
/// [`Process::New`] is the type "guessed" by rule P-New.
#[derive(Clone, Debug, PartialEq)]
pub enum Process {
    /// `⟨e⟩`
    Thread(Expr),
    /// `p | q`
    Par(Box<Process>, Box<Process>),
    /// `(νxy : T) p`
    New(Symbol, Symbol, Type, Box<Process>),
}

impl Process {
    pub fn thread(e: Expr) -> Process {
        Process::Thread(e)
    }
    pub fn par(p: Process, q: Process) -> Process {
        Process::Par(Box::new(p), Box::new(q))
    }
    pub fn new_chan(x: impl Into<Symbol>, y: impl Into<Symbol>, ty: Type, p: Process) -> Process {
        Process::New(x.into(), y.into(), ty, Box::new(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_types() {
        assert_eq!(Lit::Unit.type_of(), Type::Unit);
        assert_eq!(Lit::Int(3).type_of(), Type::int());
        assert_eq!(Lit::Str("hi".into()).type_of(), Type::string());
    }

    #[test]
    fn values_per_grammar() {
        // λx. x is a value
        let id = Expr::abs("x", Type::Unit, Expr::var("x"));
        assert!(id.is_value());
        // (λx.x) * is not
        assert!(!Expr::app(id.clone(), Expr::unit()).is_value());
        // send[T][U] is a value (partial constant)
        let s = Expr::tapps(Expr::Const(Const::Send), [Type::int(), Type::EndOut]);
        assert!(s.is_value());
        // send[T][U] v is a value (needs the channel)
        let sv = Expr::app(s, Expr::int(1));
        assert!(sv.is_value());
        // fully applied send is not a value
        let svc = Expr::app(sv, Expr::var("c"));
        assert!(!svc.is_value());
    }

    #[test]
    fn builtin_operator_table() {
        assert_eq!(Builtin::from_operator("+"), Some(Builtin::Add));
        assert_eq!(Builtin::from_operator("&&"), Some(Builtin::And));
        assert_eq!(Builtin::from_operator("???"), None);
        assert_eq!(Builtin::from_name("negate"), Some(Builtin::Negate));
    }

    #[test]
    fn builtin_types_are_closed() {
        for b in [
            Builtin::Add,
            Builtin::Eq,
            Builtin::Not,
            Builtin::PrintInt,
            Builtin::IntToStr,
        ] {
            assert!(b.type_of().free_vars().is_empty());
        }
    }

    #[test]
    fn pairs_of_values_are_values() {
        let p = Expr::pair(Expr::int(1), Expr::unit());
        assert!(p.is_value());
        let q = Expr::pair(Expr::int(1), Expr::app(Expr::var("f"), Expr::int(2)));
        assert!(!q.is_value());
    }
}

// ---------------------------------------------------------- substitution

impl Expr {
    /// Free term variables.
    pub fn free_vars(&self) -> std::collections::HashSet<Symbol> {
        let mut acc = std::collections::HashSet::new();
        fn go(e: &Expr, bound: &mut Vec<Symbol>, acc: &mut std::collections::HashSet<Symbol>) {
            match e {
                Expr::Lit(_) | Expr::Const(_) | Expr::Builtin(_) => {}
                Expr::Var(x) => {
                    if !bound.contains(x) {
                        acc.insert(*x);
                    }
                }
                Expr::Abs(x, _, b) | Expr::AbsU(x, b) | Expr::Rec(x, _, b) => {
                    bound.push(*x);
                    go(b, bound, acc);
                    bound.pop();
                }
                Expr::App(f, a) => {
                    go(f, bound, acc);
                    go(a, bound, acc);
                }
                Expr::TAbs(_, _, b) | Expr::TApp(b, _) => go(b, bound, acc),
                Expr::Pair(a, b) => {
                    go(a, bound, acc);
                    go(b, bound, acc);
                }
                Expr::LetPair(x, y, e1, e2) => {
                    go(e1, bound, acc);
                    bound.push(*x);
                    bound.push(*y);
                    go(e2, bound, acc);
                    bound.pop();
                    bound.pop();
                }
                Expr::LetUnit(e1, e2) => {
                    go(e1, bound, acc);
                    go(e2, bound, acc);
                }
                Expr::Let(x, e1, e2) => {
                    go(e1, bound, acc);
                    bound.push(*x);
                    go(e2, bound, acc);
                    bound.pop();
                }
                Expr::If(c, t, f) => {
                    go(c, bound, acc);
                    go(t, bound, acc);
                    go(f, bound, acc);
                }
                Expr::Con(_, args) => {
                    for a in args {
                        go(a, bound, acc);
                    }
                }
                Expr::Case(s, arms) => {
                    go(s, bound, acc);
                    for arm in arms {
                        for b in &arm.binders {
                            bound.push(*b);
                        }
                        go(&arm.body, bound, acc);
                        for _ in &arm.binders {
                            bound.pop();
                        }
                    }
                }
            }
        }
        go(self, &mut Vec::new(), &mut acc);
        acc
    }

    /// Capture-avoiding substitution `self[v/x]` (rule Act-App etc. of the
    /// LTS, Fig. 6).
    pub fn subst_var(&self, x: Symbol, v: &Expr) -> Expr {
        let fv = v.free_vars();
        self.subst_var_in(x, v, &fv)
    }

    fn subst_var_in(&self, x: Symbol, v: &Expr, v_fv: &std::collections::HashSet<Symbol>) -> Expr {
        // Renames `binder` when it would capture a free variable of `v`.
        let freshen = |binder: Symbol, body: &Arc<Expr>| -> (Symbol, Arc<Expr>) {
            if v_fv.contains(&binder) {
                let fresh = Symbol::fresh(binder.base_name());
                let renamed = body.subst_var(binder, &Expr::Var(fresh));
                (fresh, Arc::new(renamed))
            } else {
                (binder, body.clone())
            }
        };
        match self {
            Expr::Lit(_) | Expr::Const(_) | Expr::Builtin(_) => self.clone(),
            Expr::Var(y) => {
                if *y == x {
                    v.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Abs(y, t, b) => {
                if *y == x {
                    return self.clone();
                }
                let (y, b) = freshen(*y, b);
                Expr::Abs(y, t.clone(), Arc::new(b.subst_var_in(x, v, v_fv)))
            }
            Expr::AbsU(y, b) => {
                if *y == x {
                    return self.clone();
                }
                let (y, b) = freshen(*y, b);
                Expr::AbsU(y, Arc::new(b.subst_var_in(x, v, v_fv)))
            }
            Expr::Rec(y, t, b) => {
                if *y == x {
                    return self.clone();
                }
                let (y, b) = freshen(*y, b);
                Expr::Rec(y, t.clone(), Arc::new(b.subst_var_in(x, v, v_fv)))
            }
            Expr::App(f, a) => Expr::app(f.subst_var_in(x, v, v_fv), a.subst_var_in(x, v, v_fv)),
            Expr::TAbs(a, k, b) => Expr::TAbs(*a, *k, Arc::new(b.subst_var_in(x, v, v_fv))),
            Expr::TApp(f, t) => Expr::TApp(Arc::new(f.subst_var_in(x, v, v_fv)), t.clone()),
            Expr::Pair(a, b) => Expr::pair(a.subst_var_in(x, v, v_fv), b.subst_var_in(x, v, v_fv)),
            Expr::LetPair(y, z, e1, e2) => {
                let e1 = e1.subst_var_in(x, v, v_fv);
                if *y == x || *z == x {
                    return Expr::LetPair(*y, *z, Arc::new(e1), e2.clone());
                }
                // Freshen both binders against v's free variables.
                let (mut y2, mut z2, mut body) = (*y, *z, (**e2).clone());
                if v_fv.contains(&y2) {
                    let fresh = Symbol::fresh(y2.base_name());
                    body = body.subst_var(y2, &Expr::Var(fresh));
                    y2 = fresh;
                }
                if v_fv.contains(&z2) {
                    let fresh = Symbol::fresh(z2.base_name());
                    body = body.subst_var(z2, &Expr::Var(fresh));
                    z2 = fresh;
                }
                Expr::LetPair(
                    y2,
                    z2,
                    Arc::new(e1),
                    Arc::new(body.subst_var_in(x, v, v_fv)),
                )
            }
            Expr::LetUnit(e1, e2) => {
                Expr::let_unit(e1.subst_var_in(x, v, v_fv), e2.subst_var_in(x, v, v_fv))
            }
            Expr::Let(y, e1, e2) => {
                let e1 = e1.subst_var_in(x, v, v_fv);
                if *y == x {
                    return Expr::Let(*y, Arc::new(e1), e2.clone());
                }
                let (y, e2) = freshen(*y, e2);
                Expr::Let(y, Arc::new(e1), Arc::new(e2.subst_var_in(x, v, v_fv)))
            }
            Expr::If(c, t, f) => Expr::if_(
                c.subst_var_in(x, v, v_fv),
                t.subst_var_in(x, v, v_fv),
                f.subst_var_in(x, v, v_fv),
            ),
            Expr::Con(tag, args) => Expr::Con(
                *tag,
                args.iter().map(|a| a.subst_var_in(x, v, v_fv)).collect(),
            ),
            Expr::Case(s, arms) => {
                let s = s.subst_var_in(x, v, v_fv);
                let arms = arms
                    .iter()
                    .map(|arm| {
                        if arm.binders.contains(&x) {
                            return arm.clone();
                        }
                        let mut body = arm.body.clone();
                        let mut binders = arm.binders.clone();
                        for b in binders.iter_mut() {
                            if v_fv.contains(b) {
                                let fresh = Symbol::fresh(b.base_name());
                                body = body.subst_var(*b, &Expr::Var(fresh));
                                *b = fresh;
                            }
                        }
                        Arm {
                            tag: arm.tag,
                            binders,
                            body: body.subst_var_in(x, v, v_fv),
                        }
                    })
                    .collect();
                Expr::case(s, arms)
            }
        }
    }

    /// Substitution of a type for a type variable in all annotations
    /// (rule Act-TApp: `(Λα:κ.v)[T] → v[T/α]`).
    pub fn subst_tyvar(&self, alpha: Symbol, t: &Type) -> Expr {
        let sub =
            |ty: &Arc<Type>| -> Arc<Type> { Arc::new(crate::subst::subst_type(ty, alpha, t)) };
        match self {
            Expr::Lit(_) | Expr::Const(_) | Expr::Builtin(_) | Expr::Var(_) => self.clone(),
            Expr::Abs(x, ann, b) => Expr::Abs(*x, sub(ann), Arc::new(b.subst_tyvar(alpha, t))),
            Expr::AbsU(x, b) => Expr::AbsU(*x, Arc::new(b.subst_tyvar(alpha, t))),
            Expr::Rec(x, ann, b) => Expr::Rec(*x, sub(ann), Arc::new(b.subst_tyvar(alpha, t))),
            Expr::App(f, a) => Expr::app(f.subst_tyvar(alpha, t), a.subst_tyvar(alpha, t)),
            Expr::TAbs(beta, k, b) => {
                if *beta == alpha {
                    self.clone()
                } else {
                    Expr::TAbs(*beta, *k, Arc::new(b.subst_tyvar(alpha, t)))
                }
            }
            Expr::TApp(f, ty) => Expr::TApp(Arc::new(f.subst_tyvar(alpha, t)), sub(ty)),
            Expr::Pair(a, b) => Expr::pair(a.subst_tyvar(alpha, t), b.subst_tyvar(alpha, t)),
            Expr::LetPair(x, y, e1, e2) => Expr::LetPair(
                *x,
                *y,
                Arc::new(e1.subst_tyvar(alpha, t)),
                Arc::new(e2.subst_tyvar(alpha, t)),
            ),
            Expr::LetUnit(e1, e2) => {
                Expr::let_unit(e1.subst_tyvar(alpha, t), e2.subst_tyvar(alpha, t))
            }
            Expr::Let(x, e1, e2) => Expr::Let(
                *x,
                Arc::new(e1.subst_tyvar(alpha, t)),
                Arc::new(e2.subst_tyvar(alpha, t)),
            ),
            Expr::If(c, a, b) => Expr::if_(
                c.subst_tyvar(alpha, t),
                a.subst_tyvar(alpha, t),
                b.subst_tyvar(alpha, t),
            ),
            Expr::Con(tag, args) => {
                Expr::Con(*tag, args.iter().map(|a| a.subst_tyvar(alpha, t)).collect())
            }
            Expr::Case(s, arms) => Expr::case(
                s.subst_tyvar(alpha, t),
                arms.iter()
                    .map(|arm| Arm {
                        tag: arm.tag,
                        binders: arm.binders.clone(),
                        body: arm.body.subst_tyvar(alpha, t),
                    })
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod subst_tests {
    use super::*;

    #[test]
    fn subst_replaces_free_occurrences_only() {
        // (λx. x y)[3/y] = λx. x 3 ; [3/x] leaves it alone.
        let e = Expr::abs_u("x", Expr::app(Expr::var("x"), Expr::var("y")));
        let r = e.subst_var(Symbol::intern("y"), &Expr::int(3));
        let expected = Expr::abs_u("x", Expr::app(Expr::var("x"), Expr::int(3)));
        assert_eq!(r, expected);
        let r = e.subst_var(Symbol::intern("x"), &Expr::int(3));
        assert_eq!(r, e);
    }

    #[test]
    fn subst_avoids_capture() {
        // (λz. z x)[z/x] must rename the binder.
        let e = Expr::abs_u("z", Expr::app(Expr::var("z"), Expr::var("x")));
        let r = e.subst_var(Symbol::intern("x"), &Expr::var("z"));
        let Expr::AbsU(binder, body) = &r else {
            panic!()
        };
        assert_ne!(binder.as_str(), "z");
        let Expr::App(f, a) = &**body else { panic!() };
        assert_eq!(**f, Expr::Var(*binder));
        assert_eq!(**a, Expr::var("z"));
    }

    #[test]
    fn free_vars_of_case_arms() {
        let e = Expr::case(
            Expr::var("scrut"),
            vec![Arm {
                tag: Symbol::intern("CTag"),
                binders: vec![Symbol::intern("b")],
                body: Expr::app(Expr::var("b"), Expr::var("free")),
            }],
        );
        let fv = e.free_vars();
        assert!(fv.contains(&Symbol::intern("scrut")));
        assert!(fv.contains(&Symbol::intern("free")));
        assert!(!fv.contains(&Symbol::intern("b")));
    }

    #[test]
    fn tyvar_subst_hits_annotations() {
        let e = Expr::abs("x", Type::var("a"), Expr::var("x"));
        let r = e.subst_tyvar(Symbol::intern("a"), &Type::int());
        let Expr::Abs(_, ann, _) = &r else { panic!() };
        assert_eq!(**ann, Type::int());
    }
}
