//! The declarative type conversion relation (paper Fig. 2) as a rewrite
//! system.
//!
//! Normalization ([`crate::normalize`]) is the *algorithmic* side of type
//! equivalence. This module implements the *declarative* rules as oriented
//! one-step rewrites at arbitrary positions, serving two purposes:
//!
//! 1. **Testing** soundness/completeness (Theorems 1 and 2): every chain of
//!    rewrites must preserve the normal form.
//! 2. **Generation**: the paper's benchmark generator (Section 5) produces
//!    equivalent test pairs by "randomly applying the properties of
//!    normalization"; [`one_step_rewrites`] enumerates exactly those
//!    applications, and `algst-gen` samples random walks over them.
//!
//! Every returned rewrite is well-kinded at its position, which the walker
//! tracks via the expected kind.

use crate::kind::Kind;
use crate::kindcheck::KindCtx;
use crate::protocol::Declarations;
use crate::store::{TypeId, TypeStore};
use crate::symbol::Symbol;
use crate::types::Type;
use std::sync::Arc;

/// Enumerates all types reachable from `ty` by one application of a
/// conversion rule (Fig. 2) at any position, in either direction.
///
/// `expected` is the kind of the position `ty` sits in (use
/// [`Kind::Session`] for a session type under test, [`Kind::Protocol`] for
/// a protocol). `vars` assigns kinds to the free type variables of `ty`.
pub fn one_step_rewrites(
    decls: &Declarations,
    vars: &[(Symbol, Kind)],
    ty: &Type,
    expected: Kind,
) -> Vec<Type> {
    let mut ctx = KindCtx::new(decls);
    for (v, k) in vars {
        ctx.push_var(*v, *k);
    }
    let mut out = Vec::new();
    rewrites(&mut ctx, ty, expected, &mut out);
    out
}

/// Like [`one_step_rewrites`], but interning every variant into `store`
/// on the way out. Useful when exploring the conversion relation
/// iteratively (frontiers of rewrite-reachable types dedup to id sets,
/// since hash-consing identifies α-equivalent variants), and for
/// checking Theorem 1 at the id level: every variant must share the
/// original's normal-form id.
pub fn one_step_rewrites_interned(
    store: &mut TypeStore,
    decls: &Declarations,
    vars: &[(Symbol, Kind)],
    ty: &Type,
    expected: Kind,
) -> Vec<TypeId> {
    one_step_rewrites(decls, vars, ty, expected)
        .iter()
        .map(|t| store.intern(t))
        .collect()
}

fn rewrites(ctx: &mut KindCtx<'_>, ty: &Type, expected: Kind, out: &mut Vec<Type>) {
    root_rewrites(ctx, ty, expected, out);
    congruence_rewrites(ctx, ty, out);
}

/// Rule applications whose redex is the root of `ty`.
fn root_rewrites(ctx: &mut KindCtx<'_>, ty: &Type, expected: Kind, out: &mut Vec<Type>) {
    let synth = match ctx.synth(ty) {
        Ok(k) => k,
        Err(_) => return, // ill-kinded subterm: nothing to do
    };

    match ty {
        // ---- eliminations ------------------------------------------------
        Type::Dual(inner) => match &**inner {
            // C-DualEnd?:  Dual End? → End!
            Type::EndIn => out.push(Type::EndOut),
            // C-DualEnd!:  Dual End! → End?
            Type::EndOut => out.push(Type::EndIn),
            // C-DualIn:  Dual (?T.S) → !T.Dual S
            Type::In(p, s) => out.push(Type::output((**p).clone(), Type::Dual(s.clone()))),
            // C-DualOut:  Dual (!T.S) → ?T.Dual S
            Type::Out(p, s) => out.push(Type::input((**p).clone(), Type::Dual(s.clone()))),
            // C-DualInv:  Dual (Dual S) → S
            Type::Dual(s) => out.push((**s).clone()),
            _ => {}
        },
        Type::Neg(inner) => {
            // C-NegInv:  -(-T) → T
            if let Type::Neg(t) = &**inner {
                out.push((**t).clone());
            }
        }
        Type::In(p, s) => {
            // C-NegIn:  ?(-T).S → !T.S
            if let Type::Neg(t) = &**p {
                out.push(Type::Out(t.clone(), s.clone()));
            }
            // reverse of C-NegOut:  ?T.S → !(-T).S
            out.push(Type::output(Type::Neg(p.clone()), (**s).clone()));
        }
        Type::Out(p, s) => {
            // C-NegOut:  !(-T).S → ?T.S
            if let Type::Neg(t) = &**p {
                out.push(Type::In(t.clone(), s.clone()));
            }
            // reverse of C-NegIn:  !T.S → ?(-T).S
            out.push(Type::input(Type::Neg(p.clone()), (**s).clone()));
        }
        // reverse of C-DualEnd!:  End? → Dual End!
        Type::EndIn => out.push(Type::dual(Type::EndOut)),
        // reverse of C-DualEnd?:  End! → Dual End?
        Type::EndOut => out.push(Type::dual(Type::EndIn)),
        _ => {}
    }

    // ---- introductions (insert involutions) ------------------------------
    // S → Dual (Dual S): requires S to be a session type.
    if synth == Kind::Session {
        out.push(Type::dual(Type::dual(ty.clone())));
        // S of session kind can also be wrapped as Dual(spine-dual): e.g.
        // ?T.S → Dual (!T.Dual S), derivable from C-DualOut + C-DualInv.
        match ty {
            Type::In(p, s) => out.push(Type::dual(Type::Out(
                p.clone(),
                Arc::new(Type::Dual(s.clone())),
            ))),
            Type::Out(p, s) => out.push(Type::dual(Type::In(
                p.clone(),
                Arc::new(Type::Dual(s.clone())),
            ))),
            _ => {}
        }
    }
    // T → -(-T): the result has kind P, so the position must expect P.
    if expected == Kind::Protocol {
        out.push(Type::neg(Type::neg(ty.clone())));
    }
}

/// Rule applications inside a proper subterm (the omitted congruence rules
/// of Fig. 2).
fn congruence_rewrites(ctx: &mut KindCtx<'_>, ty: &Type, out: &mut Vec<Type>) {
    // Helper: rewrites of a child, reassembled via `build`.
    macro_rules! child {
        ($child:expr, $kind:expr, $build:expr) => {{
            let mut sub = Vec::new();
            rewrites(ctx, $child, $kind, &mut sub);
            for c in sub {
                out.push($build(c));
            }
        }};
    }

    match ty {
        Type::Unit | Type::Base(_) | Type::Var(_) | Type::EndIn | Type::EndOut => {}
        Type::Arrow(a, b) => {
            child!(a, Kind::Value, |c| Type::arrow(c, (**b).clone()));
            child!(b, Kind::Value, |c| Type::arrow((**a).clone(), c));
        }
        Type::Pair(a, b) => {
            child!(a, Kind::Value, |c| Type::pair(c, (**b).clone()));
            child!(b, Kind::Value, |c| Type::pair((**a).clone(), c));
        }
        Type::Forall(v, k, body) => {
            ctx.push_var(*v, *k);
            let mut sub = Vec::new();
            rewrites(ctx, body, Kind::Value, &mut sub);
            ctx.pop_var();
            for c in sub {
                out.push(Type::forall(*v, *k, c));
            }
        }
        Type::In(p, s) => {
            child!(p, Kind::Protocol, |c| Type::input(c, (**s).clone()));
            child!(s, Kind::Session, |c| Type::input((**p).clone(), c));
        }
        Type::Out(p, s) => {
            child!(p, Kind::Protocol, |c| Type::output(c, (**s).clone()));
            child!(s, Kind::Session, |c| Type::output((**p).clone(), c));
        }
        Type::Dual(s) => child!(s, Kind::Session, Type::dual),
        Type::Neg(t) => child!(t, Kind::Protocol, Type::neg),
        Type::Proto(name, args) => {
            for (i, a) in args.iter().enumerate() {
                let mut sub = Vec::new();
                rewrites(ctx, a, Kind::Protocol, &mut sub);
                for c in sub {
                    let mut new_args = args.clone();
                    new_args[i] = c;
                    out.push(Type::Proto(*name, new_args));
                }
            }
        }
        Type::Data(name, args) => {
            for (i, a) in args.iter().enumerate() {
                let mut sub = Vec::new();
                rewrites(ctx, a, Kind::Value, &mut sub);
                for c in sub {
                    let mut new_args = args.clone();
                    new_args[i] = c;
                    out.push(Type::Data(*name, new_args));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;

    fn equivalent(t: &Type, u: &Type) -> bool {
        Session::new().equivalent(t, u)
    }
    use crate::protocol::{Ctor, ProtocolDecl};

    fn sample_decls() -> Declarations {
        let mut d = Declarations::new();
        d.add_protocol(ProtocolDecl {
            name: Symbol::intern("ConvP"),
            params: vec![Symbol::intern("a")],
            ctors: vec![Ctor::new(
                "ConvNext",
                vec![Type::var("a"), Type::proto("ConvP", vec![Type::var("a")])],
            )],
        })
        .unwrap();
        d.validate().unwrap();
        d
    }

    #[test]
    fn rewrites_preserve_equivalence() {
        let decls = sample_decls();
        let t = Type::dual(Type::input(
            Type::neg(Type::proto("ConvP", vec![Type::int()])),
            Type::output(Type::int(), Type::EndOut),
        ));
        let variants = one_step_rewrites(&decls, &[], &t, Kind::Session);
        assert!(!variants.is_empty());
        for v in &variants {
            assert!(equivalent(&t, v), "{t}  ≢  {v}");
        }
    }

    #[test]
    fn interned_rewrites_preserve_the_store_normal_form() {
        // Theorem 1 at the id level: every one-step rewrite lands in the
        // same normal-form id as the original.
        let decls = sample_decls();
        let mut store = TypeStore::new();
        let t = Type::dual(Type::input(
            Type::neg(Type::proto("ConvP", vec![Type::int()])),
            Type::output(Type::int(), Type::EndOut),
        ));
        let t_id = store.intern(&t);
        let n = store.nrm(t_id);
        let variants = one_step_rewrites_interned(&mut store, &decls, &[], &t, Kind::Session);
        assert!(!variants.is_empty());
        for v in variants {
            assert_eq!(store.nrm(v), n, "variant {:?} broke the normal form", v);
        }
    }

    #[test]
    fn rewrites_are_closed_under_iteration() {
        let decls = sample_decls();
        let mut frontier = vec![Type::output(Type::int(), Type::EndIn)];
        let original = frontier[0].clone();
        for _ in 0..3 {
            let mut next = Vec::new();
            for t in &frontier {
                for v in one_step_rewrites(&decls, &[], t, Kind::Session) {
                    assert!(equivalent(&original, &v), "{original}  ≢  {v}");
                    next.push(v);
                }
            }
            // keep it bounded
            next.truncate(10);
            frontier = next;
        }
    }

    #[test]
    fn neg_insertion_only_at_protocol_positions() {
        let decls = sample_decls();
        let t = Type::EndOut;
        let at_session = one_step_rewrites(&decls, &[], &t, Kind::Session);
        assert!(at_session.iter().all(|v| !matches!(v, Type::Neg(_))));
        let at_proto = one_step_rewrites(&decls, &[], &t, Kind::Protocol);
        assert!(at_proto.iter().any(|v| matches!(v, Type::Neg(_))));
    }

    #[test]
    fn dual_dual_insertion_present() {
        let decls = sample_decls();
        let t = Type::EndIn;
        let vs = one_step_rewrites(&decls, &[], &t, Kind::Session);
        assert!(vs.contains(&Type::dual(Type::dual(Type::EndIn))));
        assert!(vs.contains(&Type::dual(Type::EndOut)));
    }

    #[test]
    fn variable_kinds_respected() {
        let decls = sample_decls();
        let a = Symbol::intern("aConv");
        let t = Type::var("aConv");
        // As a session variable, Dual-Dual insertion applies.
        let vs = one_step_rewrites(&decls, &[(a, Kind::Session)], &t, Kind::Session);
        assert!(vs.contains(&Type::dual(Type::dual(t.clone()))));
        // As a protocol variable, it does not (Dual needs kind S).
        let vs = one_step_rewrites(&decls, &[(a, Kind::Protocol)], &t, Kind::Protocol);
        assert!(!vs.contains(&Type::dual(Type::dual(t.clone()))));
        assert!(vs.contains(&Type::neg(Type::neg(t))));
    }
}
