//! Explicit engine contexts: [`Session`] is the handle every embedder
//! owns instead of reaching for a process-global store.
//!
//! Historically the public API was free functions over an ambient
//! `thread_local!` worker (the since-removed `equiv` module). That
//! shape had two structural problems the [`Session`] redesign removes:
//!
//! * **No isolation.** Every caller in the process shared one store, so
//!   two engines (two tenants, a fuzzer and its oracle, a bench's cold
//!   and warm runs) could never be separated.
//! * **Re-entrancy panics.** The thread-local worker lived in a
//!   `RefCell`; nesting two `with_shared_store` calls panicked at run
//!   time. A `Session` is a plain value — the borrow checker rules the
//!   same mistake out at compile time.
//!
//! A `Session` owns a [`WorkerStore`]: a per-thread mirror onto a
//! sharded [`SharedStore`]. Sessions over the *same* store (created
//! with [`Session::sibling`]) share interned nodes and memoized normal
//! forms — that is the warm-path scaling story of the server. Sessions
//! over *different* stores ([`Session::new`]) share nothing at all.
//!
//! ```
//! use algst_core::{Session, types::Type};
//!
//! let mut session = Session::new();
//! let t = Type::dual(Type::input(Type::int(), Type::EndIn));
//! let u = Type::output(Type::int(), Type::dual(Type::EndIn));
//! assert!(session.equivalent(&t, &u));
//!
//! // A sibling shares the session's warm state; a fresh session does not.
//! let mut sibling = session.sibling();
//! assert_eq!(sibling.intern(&t), session.intern(&t));
//! let mut isolated = Session::new();
//! assert!(isolated.stats().nodes < session.stats().nodes);
//! ```

use crate::normalize::resugar;
use crate::shared::{SharedStore, StoreStats, WorkerStore};
use crate::store::{StoreOps, TNode, TypeId, TypeStore};
use crate::symbol::Symbol;
use crate::types::Type;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The process-wide store behind [`Session::global`]. Private:
/// reachable only through `Session::global()`.
pub(crate) fn global_shared() -> &'static Arc<SharedStore> {
    static GLOBAL: OnceLock<Arc<SharedStore>> = OnceLock::new();
    GLOBAL.get_or_init(SharedStore::new_arc)
}

/// An explicit handle onto one type-equivalence engine: an owned
/// [`WorkerStore`] over an [`Arc<SharedStore>`].
///
/// All of intern / normalize / equivalence / duality run against *this*
/// session's store — nothing ambient, nothing thread-local. Pass
/// `&mut Session` down to whatever needs the engine; two distinct
/// sessions created with [`Session::new`] are fully isolated (see the
/// [module docs](self)).
///
/// `Session` is `Send`: create one per worker thread with
/// [`Session::sibling`] and move it into the thread.
#[derive(Debug)]
pub struct Session {
    worker: WorkerStore,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A session over a **fresh, private** store. Nothing is shared with
    /// any other session; ids from other sessions are meaningless here.
    ///
    /// ```
    /// use algst_core::{Session, types::Type};
    /// let mut a = Session::new();
    /// let mut b = Session::new();
    /// a.intern(&Type::dual(Type::EndIn));
    /// assert_eq!(b.stats().nodes, 0, "b saw none of a's work");
    /// ```
    pub fn new() -> Session {
        Session::with_store(SharedStore::new_arc())
    }

    /// A session over the **process-global** store. Ids and warm state
    /// are interchangeable with every other `Session::global()`, so
    /// this is the drop-in target for code that wants ambient sharing
    /// across independent call sites (the CLI's serving engine uses
    /// it); everything else should prefer [`Session::new`].
    ///
    /// ```
    /// use algst_core::{Session, types::Type};
    /// let t = Type::dual(Type::input(Type::int(), Type::EndIn));
    /// let id1 = Session::global().intern(&t);
    /// let id2 = Session::global().intern(&t);
    /// assert_eq!(id1, id2, "global sessions agree on ids");
    /// ```
    pub fn global() -> Session {
        Session::with_store(Arc::clone(global_shared()))
    }

    /// A new session over the **same** store as `self` — for handing to
    /// another worker thread. Siblings agree on every [`TypeId`] and
    /// share all memoized normal forms (after [`Session::publish`], which
    /// also runs automatically at a delta threshold and on drop).
    ///
    /// ```
    /// use algst_core::{Session, types::Type};
    /// let mut root = Session::new();
    /// let t = Type::output(Type::int(), Type::EndOut);
    /// let id = root.intern(&t);
    /// let mut worker = root.sibling();
    /// assert_eq!(worker.intern(&t), id);
    /// ```
    pub fn sibling(&self) -> Session {
        Session::with_store(Arc::clone(self.worker.shared()))
    }

    /// A session attached to an existing shared store (e.g. one injected
    /// into a server engine). Sessions over the same `Arc` are siblings.
    pub fn with_store(store: Arc<SharedStore>) -> Session {
        Session {
            worker: store.worker(),
        }
    }

    /// The shared store behind this session. Clone the `Arc` to inject
    /// the same store elsewhere (`Session::with_store`, a server engine).
    pub fn store(&self) -> &Arc<SharedStore> {
        self.worker.shared()
    }

    /// Whether `other` works against the same store (shares ids and warm
    /// state with `self`).
    pub fn shares_store_with(&self, other: &Session) -> bool {
        Arc::ptr_eq(self.store(), other.store())
    }

    // ------------------------------------------------------------ id level

    /// Interns a boundary [`Type`] to its α-canonical [`TypeId`]. Valid
    /// in every sibling of this session, and *only* there.
    pub fn intern(&mut self, t: &Type) -> TypeId {
        self.worker.intern(t)
    }

    /// Memoized `nrm⁺` (paper Fig. 3) at the id level.
    pub fn nrm(&mut self, id: TypeId) -> TypeId {
        self.worker.nrm(id)
    }

    /// Memoized `nrm⁻` at the id level.
    pub fn nrm_neg(&mut self, id: TypeId) -> TypeId {
        self.worker.nrm_neg(id)
    }

    /// Decides `T ≡_A U` as id equality of memoized normal forms.
    pub fn equivalent_ids(&mut self, a: TypeId, b: TypeId) -> bool {
        self.worker.equivalent_ids(a, b)
    }

    /// True when `id` is already recorded as its own normal form — the
    /// no-traversal fast path.
    pub fn is_normalized(&mut self, id: TypeId) -> bool {
        self.worker.is_normalized(id)
    }

    /// Simultaneous, capture-free substitution of ids for free variables.
    pub fn subst_free(&mut self, id: TypeId, map: &HashMap<Symbol, TypeId>) -> TypeId {
        self.worker.subst_free(id, map)
    }

    /// β-instantiation of the outermost `∀` binder of `forall_id`;
    /// `None` when `forall_id` is not a `Forall`.
    pub fn instantiate(&mut self, forall_id: TypeId, arg: TypeId) -> Option<TypeId> {
        self.worker.instantiate(forall_id, arg)
    }

    /// Converts an id back to a boundary [`Type`].
    pub fn extract(&mut self, id: TypeId) -> Type {
        self.worker.extract(id)
    }

    /// [`Session::extract`] with a per-id memo (trees share subterms).
    pub fn extract_cached(&mut self, id: TypeId) -> Type {
        self.worker.extract_cached(id)
    }

    /// Tree-node count of the type behind `id`.
    pub fn node_count(&mut self, id: TypeId) -> u64 {
        self.worker.node_count(id)
    }

    /// Read-only view of the session's local mirror, for id-level code
    /// that takes a plain [`TypeStore`] (e.g.
    /// [`KindCtx::check_id`](crate::kindcheck::KindCtx::check_id)).
    /// Every id this session has produced or looked at is present.
    pub fn local(&self) -> &TypeStore {
        self.worker.local()
    }

    // ---------------------------------------------------------- tree level

    /// `nrm⁺` on a boundary type, through this session's memo tables.
    /// Agrees with [`crate::normalize::nrm_pos`] up to α-renaming.
    ///
    /// ```
    /// use algst_core::{Session, types::Type};
    /// let mut s = Session::new();
    /// let n = s.normalize(&Type::dual(Type::dual(Type::EndOut)));
    /// assert_eq!(n, Type::EndOut);
    /// ```
    pub fn normalize(&mut self, t: &Type) -> Type {
        let id = self.intern(t);
        let n = self.nrm(id);
        self.extract(n)
    }

    /// The normal form of `Dual T` (i.e. `nrm⁻(T)`), without allocating
    /// the wrapper.
    ///
    /// ```
    /// use algst_core::{Session, types::Type};
    /// let mut s = Session::new();
    /// let d = s.dual(&Type::input(Type::int(), Type::EndIn));
    /// assert_eq!(d, Type::output(Type::int(), Type::EndOut));
    /// ```
    pub fn dual(&mut self, t: &Type) -> Type {
        let id = self.intern(t);
        let n = self.nrm_neg(id);
        self.extract(n)
    }

    /// Decides `T ≡_A U` (paper Theorems 1–3): positive normal forms
    /// compared up to α-renaming. `O(|T| + |U|)` on first contact, two
    /// memo lookups and an id comparison once warm.
    ///
    /// ```
    /// use algst_core::{Session, types::Type};
    /// let mut s = Session::new();
    /// // Dual (!Repeat.?X.Dual End!)  ≡  ?Repeat.!X.End!   (cf. Fig. 9)
    /// let lhs = Type::dual(Type::output(
    ///     Type::proto("Repeat", vec![]),
    ///     Type::input(Type::var("x"), Type::dual(Type::EndOut)),
    /// ));
    /// let rhs = Type::input(
    ///     Type::proto("Repeat", vec![]),
    ///     Type::output(Type::var("x"), Type::EndOut),
    /// );
    /// assert!(s.equivalent(&lhs, &rhs));
    /// ```
    pub fn equivalent(&mut self, t: &Type, u: &Type) -> bool {
        let a = self.intern(t);
        let b = self.intern(u);
        self.equivalent_ids(a, b)
    }

    /// Decides equivalence of the *duals* of two session types by
    /// comparing negative normal forms (Theorem 1, item 2), without
    /// allocating the `Dual` wrappers.
    pub fn equivalent_dual(&mut self, t: &Type, u: &Type) -> bool {
        let a = self.intern(t);
        let b = self.intern(u);
        self.nrm_neg(a) == self.nrm_neg(b)
    }

    /// Normalizes and compares; on mismatch returns the two normal forms
    /// **resugared for display** (reified `Dual α` pulled back out of
    /// spines, fresh binders renamed), for "expected `S`, found `T`"
    /// diagnostics.
    ///
    /// ```
    /// use algst_core::{Session, types::Type};
    /// let mut s = Session::new();
    /// let (nt, nu) = s
    ///     .check_equivalent(&Type::dual(Type::EndIn), &Type::EndIn)
    ///     .unwrap_err();
    /// assert_eq!((nt, nu), (Type::EndOut, Type::EndIn));
    /// ```
    pub fn check_equivalent(&mut self, t: &Type, u: &Type) -> Result<(), (Type, Type)> {
        let a = self.intern(t);
        let b = self.intern(u);
        let (na, nb) = (self.nrm(a), self.nrm(b));
        if na == nb {
            Ok(())
        } else {
            Err((resugar(&self.extract(na)), resugar(&self.extract(nb))))
        }
    }

    // ------------------------------------------------------- store plumbing

    /// Merges this session's memo deltas into the shared store so
    /// siblings get warm hits for them. Also runs automatically at a
    /// delta-size threshold and when the session drops.
    pub fn publish(&mut self) {
        self.worker.publish();
    }

    /// Statistics of the store behind this session (its own pending
    /// delta published first, so the caller sees its work reflected).
    ///
    /// Besides hit/miss rates, the stats expose the store's contention
    /// profile: the snapshot generation, how many generations were
    /// installed, how many cold interns entered the writer mutex
    /// (`slow_path`), and the total lock acquisitions — which stay flat
    /// across warm replays.
    ///
    /// ```
    /// use algst_core::{Session, Type};
    /// let mut session = Session::new();
    /// assert!(session.equivalent(&Type::dual(Type::EndIn), &Type::EndOut));
    /// let stats = session.stats(); // publishes, then snapshots the store
    /// assert!(stats.slow_path > 0, "cold interning took the writer mutex");
    /// assert!(stats.generation >= 1 && stats.snapshot_installs >= 1);
    ///
    /// // A fully-warm replay acquires no locks at all.
    /// let locks_before = stats.lock_acquisitions;
    /// assert!(session.equivalent(&Type::dual(Type::EndIn), &Type::EndOut));
    /// assert_eq!(session.stats().lock_acquisitions, locks_before);
    /// ```
    pub fn stats(&mut self) -> StoreStats {
        self.worker.publish();
        self.worker.shared().stats()
    }

    /// This session's pinned compaction epoch. Ids produced by this
    /// session are meaningful only while the epoch matches the store's
    /// (see [`Session::repin`]).
    pub fn epoch(&self) -> u64 {
        self.worker.epoch()
    }

    /// Adopts the store's newest compaction epoch. Returns true when
    /// the epoch actually changed — every `TypeId` this session handed
    /// out before the repin is then invalid and any id-keyed cache the
    /// caller holds must be dropped or remapped (via
    /// [`crate::shared::CompactionOutcome::remap`]). Costs one atomic
    /// load when nothing changed, so calling it at batch boundaries is
    /// free on the warm path.
    pub fn repin(&mut self) -> bool {
        self.worker.repin()
    }

    /// True when the store has compacted past this session's pinned
    /// epoch. Ids produced while stale are **local-private** — they
    /// name this session's mirror only and must never be shared with
    /// other sessions (e.g. through an id-keyed cache), even one pinned
    /// to the same epoch. Cleared by [`Session::repin`].
    pub fn is_stale(&self) -> bool {
        self.worker.is_stale()
    }

    /// Mutable access to the underlying worker, for code written against
    /// the [`WorkerStore`] API.
    pub fn worker_mut(&mut self) -> &mut WorkerStore {
        &mut self.worker
    }

    /// Install cold-path observability hooks on the store behind this
    /// session (see [`SharedStore::install_obs`]). Returns `false` if
    /// the store already has hooks — the first installer wins.
    pub fn install_obs(&self, obs: crate::shared::StoreObs) -> bool {
        self.worker.shared().install_obs(obs)
    }
}

/// A `Session` runs the same id-level algorithms as every other store:
/// generic helpers (`Subst::apply_interned`, suite interning) accept it
/// anywhere a [`TypeStore`] or [`WorkerStore`] is accepted.
impl StoreOps for Session {
    fn node_owned(&mut self, id: TypeId) -> TNode {
        self.worker.node_owned(id)
    }
    fn mk_node(&mut self, node: TNode) -> TypeId {
        self.worker.mk_node(node)
    }
    fn binders_needed(&mut self, id: TypeId) -> u32 {
        self.worker.binders_needed(id)
    }
    fn memo_pos_entry(&mut self, id: TypeId) -> Option<TypeId> {
        self.worker.memo_pos_entry(id)
    }
    fn memo_pos_record(&mut self, id: TypeId, nf: TypeId) {
        self.worker.memo_pos_record(id, nf)
    }
    fn memo_neg_entry(&mut self, id: TypeId) -> Option<TypeId> {
        self.worker.memo_neg_entry(id)
    }
    fn memo_neg_record(&mut self, id: TypeId, nf: TypeId) {
        self.worker.memo_neg_record(id, nf)
    }
    fn note_binder_hint(&mut self, id: TypeId, name: Symbol) {
        self.worker.note_binder_hint(id, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::Kind;
    use crate::normalize::nrm_pos;

    fn samples() -> Vec<Type> {
        vec![
            Type::dual(Type::input(Type::neg(Type::int()), Type::var("a"))),
            Type::dual(Type::dual(Type::output(Type::int(), Type::EndIn))),
            Type::forall(
                "s",
                Kind::Session,
                Type::arrow(
                    Type::dual(Type::output(Type::int(), Type::var("s"))),
                    Type::var("s"),
                ),
            ),
            Type::output(
                Type::proto("SessRep", vec![Type::int()]),
                Type::input(Type::bool(), Type::EndOut),
            ),
        ]
    }

    #[test]
    fn session_agrees_with_tree_normalization() {
        let mut s = Session::new();
        for t in samples() {
            assert!(
                s.normalize(&t).alpha_eq(&nrm_pos(&t)),
                "session and tree normal forms differ on {t}"
            );
            assert!(s.equivalent(&t, &t));
        }
    }

    #[test]
    fn siblings_share_ids_and_warm_state() {
        let mut a = Session::new();
        let mut b = a.sibling();
        assert!(a.shares_store_with(&b));
        for t in samples() {
            let ia = a.intern(&t);
            assert_eq!(ia, b.intern(&t), "siblings disagree on the id of {t}");
            assert_eq!(a.nrm(ia), b.nrm(ia));
        }
        let nodes = a.stats().nodes;
        assert_eq!(nodes, b.stats().nodes, "siblings read one arena");
    }

    #[test]
    fn fresh_sessions_are_fully_isolated() {
        let mut a = Session::new();
        let mut b = Session::new();
        assert!(!a.shares_store_with(&b));
        // Warm up `a` only.
        for t in samples() {
            let id = a.intern(&t);
            a.nrm(id);
        }
        let sa = a.stats();
        let sb = b.stats();
        assert!(sa.nodes > 0 && sa.nrm_misses > 0);
        assert_eq!(sb.nodes, 0, "b must not see a's interned nodes");
        assert_eq!(sb.nrm_misses, 0, "b must not see a's normalizations");
        // The same type gets *different* ids when the intern orders
        // diverge: `b` re-interns from scratch.
        let t = samples().pop().unwrap();
        let in_a = a.intern(&t);
        b.intern(&Type::pair(Type::int(), Type::int()));
        let in_b = b.intern(&t);
        assert_ne!(in_a, in_b, "ids are per-store, not global");
    }

    #[test]
    fn global_sessions_share_the_process_store() {
        let mut a = Session::global();
        let b = Session::global();
        assert!(a.shares_store_with(&b));
        let t = Type::dual(Type::output(Type::int(), Type::var("globalSess")));
        let id = a.intern(&t);
        assert_eq!(a.sibling().intern(&t), id);
    }

    #[test]
    fn nested_use_is_fine_by_construction() {
        // The pattern that panicked under `with_shared_store` (nested
        // closures over one thread-local worker) is expressed with two
        // explicit sessions — no runtime borrow to trip over.
        let mut outer = Session::new();
        let mut inner = outer.sibling();
        let t = Type::input(Type::int(), Type::EndIn);
        let id = outer.intern(&t);
        let n = inner.nrm(id);
        assert_eq!(outer.nrm(id), n);
    }

    #[test]
    fn check_equivalent_resugars_reified_duals() {
        // The raw normal form of the left side is `?Int.!Bool.Dual s` —
        // a reified `Dual s` the user never wrote. The error must show
        // the resugared `Dual (!Int.?Bool.s)` instead.
        let mut s = Session::new();
        let t = Type::dual(Type::output(
            Type::int(),
            Type::input(Type::bool(), Type::var("s")),
        ));
        let u = Type::input(Type::int(), Type::var("s"));
        let (nt, nu) = s.check_equivalent(&t, &u).unwrap_err();
        assert_eq!(nt.to_string(), "Dual (!Int.?Bool.s)");
        assert_eq!(nu.to_string(), "?Int.s");
        // Resugaring is display-only: both sides stay equivalent to the
        // originals.
        assert!(s.equivalent(&nt, &t));
        assert!(s.equivalent(&nu, &u));
    }

    #[test]
    fn dual_matches_wrapped_normalization() {
        let mut s = Session::new();
        for t in samples() {
            let via_wrap = s.normalize(&Type::dual(t.clone()));
            assert!(s.dual(&t).alpha_eq(&via_wrap), "dual mismatch on {t}");
        }
    }

    #[test]
    fn store_ops_generics_accept_sessions() {
        use crate::subst::Subst;
        let mut s = Session::new();
        let t = Type::arrow(Type::var("a"), Type::var("a"));
        let id = s.intern(&t);
        let sub = Subst::single(Symbol::intern("a"), Type::int());
        let inst = sub.apply_interned(&mut s, id);
        assert_eq!(inst, s.intern(&Type::arrow(Type::int(), Type::int())));
    }
}
