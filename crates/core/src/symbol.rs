//! Interned identifiers.
//!
//! All names in the system — type variables, protocol names, constructor
//! tags, term variables — are interned [`Symbol`]s, so comparison and
//! hashing are O(1). The interner is global and leaks its strings, which is
//! the standard trade-off for compiler-style workloads.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, compare and hash.
///
/// ```
/// use algst_core::symbol::Symbol;
/// let a = Symbol::intern("Cons");
/// let b = Symbol::intern("Cons");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "Cons");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    map: HashMap<&'static str, u32>,
    fresh: u32,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            map: HashMap::new(),
            fresh: 0,
        })
    })
}

impl Symbol {
    /// Interns `name`, returning the canonical symbol for it.
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner().lock().expect("interner poisoned");
        if let Some(&id) = i.map.get(name) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = i.names.len() as u32;
        i.names.push(leaked);
        i.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns a fresh symbol guaranteed to be distinct from every symbol
    /// interned so far. Used for capture-avoiding substitution.
    ///
    /// The name is derived from `base` for readability in error messages.
    pub fn fresh(base: &str) -> Symbol {
        let n = {
            let mut i = interner().lock().expect("interner poisoned");
            i.fresh += 1;
            i.fresh
        };
        // '%' cannot appear in source identifiers, so no collision with
        // user-written names is possible.
        Symbol::intern(&format!("{base}%{n}"))
    }

    /// The string this symbol stands for.
    pub fn as_str(&self) -> &'static str {
        let i = interner().lock().expect("interner poisoned");
        i.names[self.0 as usize]
    }

    /// Strips the freshness suffix, if any, for user-facing display.
    pub fn base_name(&self) -> &'static str {
        let s = self.as_str();
        match s.find('%') {
            Some(ix) => &s[..ix],
            None => s,
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Symbol::intern("x"), Symbol::intern("x"));
        assert_ne!(Symbol::intern("x"), Symbol::intern("y"));
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = Symbol::fresh("x");
        let b = Symbol::fresh("x");
        assert_ne!(a, b);
        assert_eq!(a.base_name(), "x");
    }

    #[test]
    fn display_roundtrip() {
        let s = Symbol::intern("Stream");
        assert_eq!(s.to_string(), "Stream");
        assert_eq!(format!("{s:?}"), "`Stream`");
    }
}
