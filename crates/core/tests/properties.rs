//! Property-based tests of the normalization/equivalence metatheory
//! (paper Theorems 1–3 and Lemma 3), over randomly generated well-kinded
//! types.

use algst_core::conversion::one_step_rewrites;
use algst_core::kind::Kind;
use algst_core::kindcheck::KindCtx;
use algst_core::normalize::{is_normal, nrm_neg, nrm_pos, resugar};
use algst_core::protocol::{Ctor, Declarations, ProtocolDecl};
use algst_core::store::{TNode, TypeStore};
use algst_core::symbol::Symbol;
use algst_core::types::Type;
use algst_core::Session;
use proptest::prelude::*;

/// `T ≡_A U` through a fresh [`Session`] — each property case is
/// hermetic (no cross-case warm state to mask a bug).
fn equivalent(t: &Type, u: &Type) -> bool {
    Session::new().equivalent(t, u)
}

/// Negative-normal-form equivalence through a fresh [`Session`].
fn equivalent_dual(t: &Type, u: &Type) -> bool {
    Session::new().equivalent_dual(t, u)
}

/// Test declarations: a parameterized stream and a mutually recursive
/// pair, mirroring the shapes in the paper's examples.
fn decls() -> Declarations {
    let mut d = Declarations::new();
    d.add_protocol(ProtocolDecl {
        name: Symbol::intern("PStream"),
        params: vec![Symbol::intern("a")],
        ctors: vec![Ctor::new(
            "PNext",
            vec![Type::var("a"), Type::proto("PStream", vec![Type::var("a")])],
        )],
    })
    .unwrap();
    d.add_protocol(ProtocolDecl {
        name: Symbol::intern("PFlip"),
        params: vec![],
        ctors: vec![Ctor::new(
            "PFlipC",
            vec![Type::neg(Type::int()), Type::proto("PFlop", vec![])],
        )],
    })
    .unwrap();
    d.add_protocol(ProtocolDecl {
        name: Symbol::intern("PFlop"),
        params: vec![],
        ctors: vec![
            Ctor::new("PFlopC", vec![Type::int(), Type::proto("PFlip", vec![])]),
            Ctor::new("PFlopQ", vec![]),
        ],
    })
    .unwrap();
    d.validate().unwrap();
    d
}

/// Strategy for well-kinded protocol-kinded types (kind P) with free
/// session variable `sv`.
fn arb_protocol_ty() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::int()),
        Just(Type::bool()),
        Just(Type::string()),
        Just(Type::Unit),
        Just(Type::proto("PFlip", vec![])),
        Just(Type::proto("PFlop", vec![])),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Type::neg),
            inner.clone().prop_map(|t| Type::proto("PStream", vec![t])),
            (inner.clone(), arb_session_from(inner)).prop_map(|(p, s)| Type::pair_hack(p, s)),
        ]
    })
}

/// Session types built from a protocol-type strategy.
fn arb_session_from(proto: BoxedStrategy<Type>) -> BoxedStrategy<Type> {
    let leaf = prop_oneof![Just(Type::EndIn), Just(Type::EndOut), Just(Type::var("sv")),];
    leaf.prop_recursive(6, 64, 3, move |inner| {
        let proto = proto.clone();
        prop_oneof![
            (proto.clone(), inner.clone()).prop_map(|(p, s)| Type::input(p, s)),
            (proto.clone(), inner.clone()).prop_map(|(p, s)| Type::output(p, s)),
            inner.prop_map(Type::dual),
        ]
    })
    .boxed()
}

/// A helper so the protocol strategy can embed *sessions lifted to P*
/// without infinite strategy recursion: sessions are protocols by
/// subsumption, so a pair (p, s) just picks the session.
trait PairHack {
    fn pair_hack(p: Type, s: Type) -> Type;
}
impl PairHack for Type {
    fn pair_hack(_p: Type, s: Type) -> Type {
        s
    }
}

fn arb_session() -> impl Strategy<Value = Type> {
    arb_session_from(arb_protocol_ty().boxed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Generated session types are well-kinded (sanity of the strategy).
    #[test]
    fn strategy_is_well_kinded(t in arb_session()) {
        let d = decls();
        let mut ctx = KindCtx::new(&d);
        ctx.push_var(Symbol::intern("sv"), Kind::Session);
        prop_assert!(ctx.check(&t, Kind::Session).is_ok(), "{t}");
    }

    /// nrm⁺ lands in the normal-form grammar Q (Lemma 3).
    #[test]
    fn nrm_is_normal(t in arb_session()) {
        prop_assert!(is_normal(&nrm_pos(&t)), "nrm⁺({t}) not normal");
    }

    /// nrm⁺ is idempotent.
    #[test]
    fn nrm_idempotent(t in arb_session()) {
        let once = nrm_pos(&t);
        prop_assert!(once.alpha_eq(&nrm_pos(&once)));
    }

    /// nrm⁻(T) = nrm⁺(Dual T) — the pending-dual reading of Fig. 3.
    #[test]
    fn nrm_neg_is_dual(t in arb_session()) {
        prop_assert!(nrm_neg(&t).alpha_eq(&nrm_pos(&Type::dual(t.clone()))));
    }

    /// Duality is involutory up to equivalence (C-DualInv).
    #[test]
    fn dual_involution(t in arb_session()) {
        prop_assert!(equivalent(&Type::dual(Type::dual(t.clone())), &t));
    }

    /// Negation is involutory on protocol types (C-NegInv).
    #[test]
    fn neg_involution(p in arb_protocol_ty()) {
        let t = Type::output(Type::neg(Type::neg(p.clone())), Type::EndOut);
        let u = Type::output(p, Type::EndOut);
        prop_assert!(equivalent(&t, &u));
    }

    /// ?(-T).S ≡ !T.S and !(-T).S ≡ ?T.S (C-NegIn / C-NegOut).
    #[test]
    fn neg_flips_direction(p in arb_protocol_ty(), s in arb_session()) {
        let lhs = Type::input(Type::neg(p.clone()), s.clone());
        let rhs = Type::output(p.clone(), s.clone());
        prop_assert!(equivalent(&lhs, &rhs));
        let lhs = Type::output(Type::neg(p.clone()), s.clone());
        let rhs = Type::input(p, s);
        prop_assert!(equivalent(&lhs, &rhs));
    }

    /// equivalent_dual agrees with wrapping in Dual (Theorem 1.2).
    #[test]
    fn equivalent_dual_agrees(t in arb_session(), u in arb_session()) {
        prop_assert_eq!(
            equivalent_dual(&t, &u),
            equivalent(&Type::dual(t.clone()), &Type::dual(u.clone()))
        );
    }

    /// Dualization preserves equivalence both ways.
    #[test]
    fn congruence_of_dual(t in arb_session()) {
        prop_assert!(equivalent(&Type::dual(t.clone()), &Type::dual(t.clone())));
        prop_assert_eq!(
            equivalent(&t, &Type::dual(t.clone())),
            equivalent(&Type::dual(t.clone()), &t)
        );
    }

    /// Soundness of the declarative rules (Theorem 1): every one-step
    /// rewrite preserves the normal form.
    #[test]
    fn conversion_rewrites_sound(t in arb_session()) {
        let d = decls();
        let vars = [(Symbol::intern("sv"), Kind::Session)];
        for v in one_step_rewrites(&d, &vars, &t, Kind::Session) {
            prop_assert!(equivalent(&t, &v), "{t} ≢ {v}");
        }
    }

    /// Completeness direction on a decidable sub-case: structurally
    /// different End-terminated spines are inequivalent unless their
    /// normal forms coincide (trivially true — what we check is that
    /// equivalence never identifies types with different spine lengths).
    #[test]
    fn spine_length_is_invariant(t in arb_session()) {
        fn spine_len(t: &Type) -> usize {
            match t {
                Type::In(_, s) | Type::Out(_, s) => 1 + spine_len(s),
                _ => 0,
            }
        }
        let n = nrm_pos(&t);
        let longer = Type::output(Type::int(), t.clone());
        prop_assert!(!equivalent(&t, &longer) || spine_len(&n) == usize::MAX);
    }

    /// node_count is positive and additive enough to serve as the
    /// Figure 10 x-axis.
    #[test]
    fn node_count_sane(t in arb_session(), u in arb_session()) {
        prop_assert!(t.node_count() >= 1);
        let pair = Type::pair(t.clone(), u.clone());
        prop_assert_eq!(pair.node_count(), 1 + t.node_count() + u.node_count());
    }

    // ----------------------- hash-consed type store (see core::store) ----

    /// Interning is idempotent: the same tree always yields the same id,
    /// and re-interning an extraction yields the id back.
    #[test]
    fn store_interning_idempotent(t in arb_session()) {
        let mut s = TypeStore::new();
        let a = s.intern(&t);
        let b = s.intern(&t);
        prop_assert_eq!(a, b);
        let back = s.extract(a);
        prop_assert_eq!(s.intern(&back), a);
    }

    /// `Type → TypeId → Type` round-trips α-equivalently.
    #[test]
    fn store_round_trip_alpha_equivalent(t in arb_session()) {
        let mut s = TypeStore::new();
        let id = s.intern(&t);
        let back = s.extract(id);
        prop_assert!(t.alpha_eq(&back), "{} vs {}", t, back);
    }

    /// α-equivalent inputs intern to the same id (binders are canonical).
    #[test]
    fn store_identifies_alpha_classes(t in arb_session()) {
        let quant = Type::forall("sv", Kind::Session, t.clone());
        let renamed = algst_core::subst::subst_type(&t, Symbol::intern("sv"), &Type::var("renamedSv"));
        let quant2 = Type::forall("renamedSv", Kind::Session, renamed);
        let mut s = TypeStore::new();
        prop_assert_eq!(s.intern(&quant), s.intern(&quant2));
    }

    /// `nrm` is a fixpoint at the id level: nrm(nrm(t)) == nrm(t), and
    /// the result is flagged as normalized (O(1) on later queries).
    #[test]
    fn store_nrm_fixpoint(t in arb_session()) {
        let mut s = TypeStore::new();
        let id = s.intern(&t);
        let n = s.nrm(id);
        prop_assert_eq!(s.nrm(n), n);
        prop_assert!(s.is_normalized(n));
        // ...and it agrees with a *fresh* normalization of the extracted
        // normal form (the fixpoint is semantic, not just memo-seeded).
        let back = s.extract(n);
        let mut fresh = TypeStore::new();
        let reid = fresh.intern(&back);
        prop_assert_eq!(fresh.nrm(reid), reid, "extracted NF renormalized differently");
    }

    /// The store's normalization agrees with the tree-level `nrm⁺`.
    #[test]
    fn store_nrm_agrees_with_tree_nrm(t in arb_session()) {
        let mut s = TypeStore::new();
        let id = s.intern(&t);
        let via_store = s.nrm(id);
        let via_tree = s.intern(&nrm_pos(&t));
        prop_assert_eq!(via_store, via_tree, "store/tree mismatch on {}", t);
    }

    /// Dual is an involution at the id level:
    /// `nrm⁻(nrm⁻(t)) == nrm⁺(t)` and `nrm(Dual (Dual t)) == nrm(t)`.
    #[test]
    fn store_dual_involution(t in arb_session()) {
        let mut s = TypeStore::new();
        let id = s.intern(&t);
        let once = s.nrm_neg(id);
        let twice = s.nrm_neg(once);
        prop_assert_eq!(twice, s.nrm(id));
        let dd = s.intern(&Type::dual(Type::dual(t.clone())));
        let n = s.nrm(dd);
        prop_assert_eq!(n, s.nrm(id));
    }

    /// `nrm⁻` at the id level is `nrm⁺ ∘ Dual`, mirroring the tree fact.
    #[test]
    fn store_nrm_neg_is_dual(t in arb_session()) {
        let mut s = TypeStore::new();
        let id = s.intern(&t);
        let dual = s.mk(TNode::Dual(id));
        let lhs = s.nrm_neg(id);
        prop_assert_eq!(lhs, s.nrm(dual));
    }

    /// Store equivalence agrees with the tree-level decision procedure on
    /// both related and unrelated pairs.
    #[test]
    fn store_equivalence_agrees(t in arb_session(), u in arb_session()) {
        let tree = nrm_pos(&t).alpha_eq(&nrm_pos(&u));
        let mut s = TypeStore::new();
        let a = s.intern(&t);
        let b = s.intern(&u);
        prop_assert_eq!(s.equivalent_ids(a, b), tree);
    }

    /// Resugaring is display-only: it never changes the equivalence class.
    #[test]
    fn resugar_preserves_equivalence(t in arb_session()) {
        let n = nrm_pos(&t);
        let r = resugar(&n);
        prop_assert!(equivalent(&r, &n), "{} resugared to inequivalent {}", n, r);
    }
}
