//! Property-based tests of the normalization/equivalence metatheory
//! (paper Theorems 1–3 and Lemma 3), over randomly generated well-kinded
//! types.

use algst_core::conversion::one_step_rewrites;
use algst_core::equiv::{equivalent, equivalent_dual};
use algst_core::kind::Kind;
use algst_core::kindcheck::KindCtx;
use algst_core::normalize::{is_normal, nrm_neg, nrm_pos};
use algst_core::protocol::{Ctor, Declarations, ProtocolDecl};
use algst_core::symbol::Symbol;
use algst_core::types::Type;
use proptest::prelude::*;

/// Test declarations: a parameterized stream and a mutually recursive
/// pair, mirroring the shapes in the paper's examples.
fn decls() -> Declarations {
    let mut d = Declarations::new();
    d.add_protocol(ProtocolDecl {
        name: Symbol::intern("PStream"),
        params: vec![Symbol::intern("a")],
        ctors: vec![Ctor::new(
            "PNext",
            vec![Type::var("a"), Type::proto("PStream", vec![Type::var("a")])],
        )],
    })
    .unwrap();
    d.add_protocol(ProtocolDecl {
        name: Symbol::intern("PFlip"),
        params: vec![],
        ctors: vec![Ctor::new(
            "PFlipC",
            vec![Type::neg(Type::int()), Type::proto("PFlop", vec![])],
        )],
    })
    .unwrap();
    d.add_protocol(ProtocolDecl {
        name: Symbol::intern("PFlop"),
        params: vec![],
        ctors: vec![
            Ctor::new("PFlopC", vec![Type::int(), Type::proto("PFlip", vec![])]),
            Ctor::new("PFlopQ", vec![]),
        ],
    })
    .unwrap();
    d.validate().unwrap();
    d
}

/// Strategy for well-kinded protocol-kinded types (kind P) with free
/// session variable `sv`.
fn arb_protocol_ty() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::int()),
        Just(Type::bool()),
        Just(Type::string()),
        Just(Type::Unit),
        Just(Type::proto("PFlip", vec![])),
        Just(Type::proto("PFlop", vec![])),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Type::neg),
            inner.clone().prop_map(|t| Type::proto("PStream", vec![t])),
            (inner.clone(), arb_session_from(inner)).prop_map(|(p, s)| Type::pair_hack(p, s)),
        ]
    })
}

/// Session types built from a protocol-type strategy.
fn arb_session_from(proto: BoxedStrategy<Type>) -> BoxedStrategy<Type> {
    let leaf = prop_oneof![Just(Type::EndIn), Just(Type::EndOut), Just(Type::var("sv")),];
    leaf.prop_recursive(6, 64, 3, move |inner| {
        let proto = proto.clone();
        prop_oneof![
            (proto.clone(), inner.clone()).prop_map(|(p, s)| Type::input(p, s)),
            (proto.clone(), inner.clone()).prop_map(|(p, s)| Type::output(p, s)),
            inner.prop_map(Type::dual),
        ]
    })
    .boxed()
}

/// A helper so the protocol strategy can embed *sessions lifted to P*
/// without infinite strategy recursion: sessions are protocols by
/// subsumption, so a pair (p, s) just picks the session.
trait PairHack {
    fn pair_hack(p: Type, s: Type) -> Type;
}
impl PairHack for Type {
    fn pair_hack(_p: Type, s: Type) -> Type {
        s
    }
}

fn arb_session() -> impl Strategy<Value = Type> {
    arb_session_from(arb_protocol_ty().boxed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Generated session types are well-kinded (sanity of the strategy).
    #[test]
    fn strategy_is_well_kinded(t in arb_session()) {
        let d = decls();
        let mut ctx = KindCtx::new(&d);
        ctx.push_var(Symbol::intern("sv"), Kind::Session);
        prop_assert!(ctx.check(&t, Kind::Session).is_ok(), "{t}");
    }

    /// nrm⁺ lands in the normal-form grammar Q (Lemma 3).
    #[test]
    fn nrm_is_normal(t in arb_session()) {
        prop_assert!(is_normal(&nrm_pos(&t)), "nrm⁺({t}) not normal");
    }

    /// nrm⁺ is idempotent.
    #[test]
    fn nrm_idempotent(t in arb_session()) {
        let once = nrm_pos(&t);
        prop_assert!(once.alpha_eq(&nrm_pos(&once)));
    }

    /// nrm⁻(T) = nrm⁺(Dual T) — the pending-dual reading of Fig. 3.
    #[test]
    fn nrm_neg_is_dual(t in arb_session()) {
        prop_assert!(nrm_neg(&t).alpha_eq(&nrm_pos(&Type::dual(t.clone()))));
    }

    /// Duality is involutory up to equivalence (C-DualInv).
    #[test]
    fn dual_involution(t in arb_session()) {
        prop_assert!(equivalent(&Type::dual(Type::dual(t.clone())), &t));
    }

    /// Negation is involutory on protocol types (C-NegInv).
    #[test]
    fn neg_involution(p in arb_protocol_ty()) {
        let t = Type::output(Type::neg(Type::neg(p.clone())), Type::EndOut);
        let u = Type::output(p, Type::EndOut);
        prop_assert!(equivalent(&t, &u));
    }

    /// ?(-T).S ≡ !T.S and !(-T).S ≡ ?T.S (C-NegIn / C-NegOut).
    #[test]
    fn neg_flips_direction(p in arb_protocol_ty(), s in arb_session()) {
        let lhs = Type::input(Type::neg(p.clone()), s.clone());
        let rhs = Type::output(p.clone(), s.clone());
        prop_assert!(equivalent(&lhs, &rhs));
        let lhs = Type::output(Type::neg(p.clone()), s.clone());
        let rhs = Type::input(p, s);
        prop_assert!(equivalent(&lhs, &rhs));
    }

    /// equivalent_dual agrees with wrapping in Dual (Theorem 1.2).
    #[test]
    fn equivalent_dual_agrees(t in arb_session(), u in arb_session()) {
        prop_assert_eq!(
            equivalent_dual(&t, &u),
            equivalent(&Type::dual(t.clone()), &Type::dual(u.clone()))
        );
    }

    /// Dualization preserves equivalence both ways.
    #[test]
    fn congruence_of_dual(t in arb_session()) {
        prop_assert!(equivalent(&Type::dual(t.clone()), &Type::dual(t.clone())));
        prop_assert_eq!(
            equivalent(&t, &Type::dual(t.clone())),
            equivalent(&Type::dual(t.clone()), &t)
        );
    }

    /// Soundness of the declarative rules (Theorem 1): every one-step
    /// rewrite preserves the normal form.
    #[test]
    fn conversion_rewrites_sound(t in arb_session()) {
        let d = decls();
        let vars = [(Symbol::intern("sv"), Kind::Session)];
        for v in one_step_rewrites(&d, &vars, &t, Kind::Session) {
            prop_assert!(equivalent(&t, &v), "{t} ≢ {v}");
        }
    }

    /// Completeness direction on a decidable sub-case: structurally
    /// different End-terminated spines are inequivalent unless their
    /// normal forms coincide (trivially true — what we check is that
    /// equivalence never identifies types with different spine lengths).
    #[test]
    fn spine_length_is_invariant(t in arb_session()) {
        fn spine_len(t: &Type) -> usize {
            match t {
                Type::In(_, s) | Type::Out(_, s) => 1 + spine_len(s),
                _ => 0,
            }
        }
        let n = nrm_pos(&t);
        let longer = Type::output(Type::int(), t.clone());
        prop_assert!(!equivalent(&t, &longer) || spine_len(&n) == usize::MAX);
    }

    /// node_count is positive and additive enough to serve as the
    /// Figure 10 x-axis.
    #[test]
    fn node_count_sane(t in arb_session(), u in arb_session()) {
        prop_assert!(t.node_count() >= 1);
        let pair = Type::pair(t.clone(), u.clone());
        prop_assert_eq!(pair.node_count(), 1 + t.node_count() + u.node_count());
    }
}
