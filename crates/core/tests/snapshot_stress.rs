//! Stress tests of the epoch-snapshot store's publication protocol:
//! prefix consistency (an id, once handed out, resolves to the same
//! node in every later generation), memo immutability (a published
//! `nrm` entry never changes), and the lock-free warm path (a warm
//! replay acquires zero store locks).

use algst_core::shared::SharedStore;
use algst_core::store::TypeId;
use algst_core::types::Type;
use std::collections::HashMap;

const THREADS: usize = 8;

/// A deterministic family of session types indexed by `i`: the binary
/// digits of `i` as an in/out chain, wrapped so normalization has real
/// work to do (`Dual`/`Neg` shells that `nrm` must push inward).
fn family(i: usize) -> Type {
    let mut t = Type::EndOut;
    let mut n = i;
    loop {
        t = if n & 1 == 0 {
            Type::output(Type::int(), t)
        } else {
            Type::input(Type::bool(), t)
        };
        n >>= 1;
        if n == 0 {
            break;
        }
    }
    match i % 3 {
        0 => Type::dual(t),
        1 => Type::dual(Type::dual(Type::neg(Type::neg(t)))),
        _ => Type::output(Type::neg(Type::int()), Type::dual(t)),
    }
}

/// Eight threads intern overlapping slices of the family, publishing at
/// staggered points. Every id any thread was handed must resolve to an
/// α-equal type — and re-intern to the same id — through a fresh worker
/// attached after all generations were installed.
#[test]
fn ids_resolve_to_the_same_node_in_all_later_generations() {
    let shared = SharedStore::new_arc();
    let recorded: Vec<Vec<(TypeId, Type)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|ti| {
                let shared = &shared;
                scope.spawn(move || {
                    let mut w = shared.worker();
                    let mut seen = Vec::new();
                    // Overlapping ranges: every index is contested by
                    // several threads, so the re-check-under-lock path
                    // (racing interns of the same node) is exercised.
                    for j in 0..96 {
                        let t = family(ti * 24 + j);
                        let id = w.intern(&t);
                        seen.push((id, t));
                        if j % 7 == ti % 7 {
                            w.publish();
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Threads that interned the same type got the same id.
    let mut by_id: HashMap<TypeId, &Type> = HashMap::new();
    for (id, t) in recorded.iter().flatten() {
        if let Some(prev) = by_id.insert(*id, t) {
            assert!(prev.alpha_eq(t), "id {id:?} bound to {prev} and {t}");
        }
    }

    // A fresh worker, over the final generation, resolves every id that
    // was ever handed out to the exact node it named at intern time.
    let mut w = shared.worker();
    for (id, t) in recorded.iter().flatten() {
        assert!(id.index() < shared.len(), "id beyond the arena");
        let back = w.extract(*id);
        assert!(back.alpha_eq(t), "id {id:?}: {back} != {t}");
        assert_eq!(w.intern(t), *id, "re-intern of {t} moved");
    }
}

/// Eight threads normalize the same ids concurrently with staggered
/// publishes: whatever `nrm` entry each thread observed must agree with
/// every other thread's and with the final published generation —
/// entries never change once published.
#[test]
fn nrm_memo_entries_never_change_once_published() {
    let shared = SharedStore::new_arc();
    // Pre-intern a common id space so all threads race on the same keys.
    let ids: Vec<TypeId> = {
        let mut w = shared.worker();
        let ids = (0..128).map(|i| w.intern(&family(i))).collect();
        w.publish();
        ids
    };
    let observed: Vec<Vec<(TypeId, TypeId)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|ti| {
                let shared = &shared;
                let ids = &ids;
                scope.spawn(move || {
                    let mut w = shared.worker();
                    let mut seen = Vec::new();
                    // Rotate the traversal per thread so each id is hit
                    // cold by some thread and warm by others.
                    for k in 0..ids.len() {
                        let id = ids[(k + ti * 16) % ids.len()];
                        seen.push((id, w.nrm(id)));
                        if k % 11 == ti {
                            w.publish();
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All threads observed the same normal form for every id.
    let mut nf: HashMap<TypeId, TypeId> = HashMap::new();
    for &(id, n) in observed.iter().flatten() {
        if let Some(&prev) = nf.get(&id) {
            assert_eq!(prev, n, "nrm({id:?}) changed between observations");
        } else {
            nf.insert(id, n);
        }
    }
    // And the final generation serves exactly those entries.
    let mut w = shared.worker();
    let before = shared.stats().nrm_misses;
    for (&id, &n) in &nf {
        assert_eq!(w.nrm(id), n, "published nrm({id:?}) drifted");
    }
    w.publish();
    assert_eq!(
        shared.stats().nrm_misses,
        before,
        "a published entry was recomputed"
    );
}

/// The tentpole invariant: once the store is warm and published, a
/// brand-new worker replaying every query performs **zero** lock
/// acquisitions — interns hit the snapshot's hash-consing layers, `nrm`
/// hits the memo layers, and the arena is read lock-free.
#[test]
fn warm_replay_acquires_zero_locks() {
    let shared = SharedStore::new_arc();
    {
        let mut w = shared.worker();
        for i in 0..256 {
            let a = w.intern(&family(i));
            let b = w.intern(&family(i + 1));
            w.equivalent_ids(a, b);
        }
        w.publish();
    }
    let mut w = shared.worker(); // attach before the baseline (one counted lock)
    let baseline = shared.stats();
    for i in 0..256 {
        let a = w.intern(&family(i));
        let b = w.intern(&family(i + 1));
        w.equivalent_ids(a, b);
    }
    w.publish(); // empty deltas: must also take no locks
    let after = shared.stats();
    assert_eq!(
        after.lock_acquisitions,
        baseline.lock_acquisitions,
        "warm replay took {} locks",
        after.lock_acquisitions - baseline.lock_acquisitions
    );
    assert_eq!(after.slow_path, baseline.slow_path, "warm intern went cold");
    assert_eq!(
        after.generation, baseline.generation,
        "warm replay installed a generation"
    );
}
