//! Property tests of the **concurrent** store semantics: checking the
//! same types from many threads through one [`SharedStore`] must be
//! indistinguishable (in ids and verdicts) from the single-threaded
//! tree-level oracle.

use algst_core::normalize::nrm_pos;
use algst_core::shared::SharedStore;
use algst_core::store::TypeId;
use algst_core::types::Type;
use proptest::prelude::*;

const THREADS: usize = 8;

/// Compact strategy over session-shaped types with a free variable and
/// nominal protocol references — enough to exercise every `TNode`
/// constructor the normalizer rewrites.
fn arb_ty() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::EndIn),
        Just(Type::EndOut),
        Just(Type::int()),
        Just(Type::var("sv")),
        Just(Type::proto("CcP", vec![])),
    ];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, s)| Type::input(p, s)),
            (inner.clone(), inner.clone()).prop_map(|(p, s)| Type::output(p, s)),
            inner.clone().prop_map(Type::dual),
            inner.clone().prop_map(Type::neg),
            inner.clone().prop_map(|t| Type::proto("CcStream", vec![t])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::arrow(a, b)),
        ]
    })
}

/// The single-threaded, tree-level verdict (no store involved at all).
fn oracle(t: &Type, u: &Type) -> bool {
    nrm_pos(t).alpha_eq(&nrm_pos(u))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eight threads intern and decide the same sample set concurrently:
    /// every thread must agree with every other thread on every id, and
    /// `equivalent_ids` must be reflexive, symmetric, and equal to the
    /// tree oracle on every pair.
    #[test]
    fn eight_threads_match_the_tree_oracle(samples in prop::collection::vec(arb_ty(), 2..10)) {
        let shared = SharedStore::new_arc();
        let per_thread: Vec<(Vec<TypeId>, Vec<Vec<bool>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|ti| {
                    let shared = &shared;
                    let samples = &samples;
                    scope.spawn(move || {
                        let mut w = shared.worker();
                        let ids: Vec<TypeId> =
                            samples.iter().map(|t| w.intern(t)).collect();
                        let mut verdicts = Vec::new();
                        for (i, &a) in ids.iter().enumerate() {
                            assert!(w.equivalent_ids(a, a), "thread {ti}: not reflexive");
                            let row: Vec<bool> = ids
                                .iter()
                                .map(|&b| {
                                    let ab = w.equivalent_ids(a, b);
                                    assert_eq!(
                                        ab,
                                        w.equivalent_ids(b, a),
                                        "thread {ti}: not symmetric on ({i})"
                                    );
                                    ab
                                })
                                .collect();
                            verdicts.push(row);
                            // Interleave publishes so other threads pick
                            // up this thread's memo entries mid-run.
                            if i % 2 == 0 {
                                w.publish();
                            }
                        }
                        (ids, verdicts)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let (ids0, verdicts0) = &per_thread[0];
        for (ids, verdicts) in &per_thread[1..] {
            prop_assert_eq!(ids, ids0, "threads disagree on ids");
            prop_assert_eq!(verdicts, verdicts0, "threads disagree on verdicts");
        }
        for (i, a) in samples.iter().enumerate() {
            for (j, b) in samples.iter().enumerate() {
                prop_assert_eq!(
                    verdicts0[i][j],
                    oracle(a, b),
                    "store verdict differs from tree oracle on {} vs {}",
                    a,
                    b
                );
            }
        }
    }

    /// Warm restarts: a second wave of fresh workers, arriving after the
    /// first wave published, sees identical ids and verdicts (served
    /// from the shared memo instead of recomputation).
    #[test]
    fn second_wave_reuses_published_state(samples in prop::collection::vec(arb_ty(), 2..8)) {
        let shared = SharedStore::new_arc();
        let run_wave = || -> Vec<(TypeId, TypeId, bool)> {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let shared = &shared;
                        let samples = &samples;
                        scope.spawn(move || {
                            let mut w = shared.worker();
                            samples
                                .windows(2)
                                .map(|pair| {
                                    let a = w.intern(&pair[0]);
                                    let b = w.intern(&pair[1]);
                                    (a, b, w.equivalent_ids(a, b))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut results: Vec<_> =
                    handles.into_iter().map(|h| h.join().unwrap()).collect();
                let first = results.remove(0);
                for other in results {
                    assert_eq!(other, first);
                }
                first
            })
        };
        let wave1 = run_wave();
        let misses_after_wave1 = shared.stats().nrm_misses;
        let wave2 = run_wave();
        prop_assert_eq!(wave1, wave2);
        // The second wave computed nothing new: every normal form was
        // already in the shared memo.
        prop_assert_eq!(shared.stats().nrm_misses, misses_after_wave1);
    }
}
