//! Context-free session types (CFST) in the style of FreeST
//! [Thiemann & Vasconcelos 2016; Almeida et al. 2020, 2022].
//!
//! ```text
//! T ::= Skip | End! | End? | !P | ?P | ⊕{l:T…} | &{l:T…}
//!     | T;T | rec x.T | x | ∀x.T
//! ```
//!
//! compared to AlgST, messages are atomic (`!P` with no continuation) and
//! sessions compose with the monoidal `;`/`Skip`. Recursion is
//! *equirecursive*: `rec x.T` is equal to its unfolding, which makes type
//! equivalence a bisimilarity problem on simple grammars (see
//! [`crate::grammar`] and [`crate::bisim`]).

use std::fmt;

/// Direction of a communication: `!`/`⊕` vs `?`/`&`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Dir {
    Out,
    In,
}

impl Dir {
    pub fn flip(self) -> Dir {
        match self {
            Dir::Out => Dir::In,
            Dir::In => Dir::Out,
        }
    }
}

/// A label in a choice/branch, or a type variable name. Plain interned
/// strings keep this crate free of AlgST dependencies.
pub type Name = String;

/// Functional payload types transmitted by `!`/`?`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Payload {
    Unit,
    Int,
    Bool,
    Char,
    Str,
    Var(Name),
    Pair(Box<Payload>, Box<Payload>),
    /// An (already closed) session type as payload, e.g. `!(Char, End!)`
    /// in the paper's Fig. 9. Compared structurally — the benchmark
    /// generator only places flat types here.
    Session(Box<CfType>),
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Unit => write!(f, "()"),
            Payload::Int => write!(f, "Int"),
            Payload::Bool => write!(f, "Bool"),
            Payload::Char => write!(f, "Char"),
            Payload::Str => write!(f, "String"),
            Payload::Var(v) => write!(f, "{v}"),
            Payload::Pair(a, b) => write!(f, "({a}, {b})"),
            Payload::Session(s) => write!(f, "{s}"),
        }
    }
}

/// A context-free session type.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CfType {
    Skip,
    /// `End!` (terminate) / `End?` (wait).
    End(Dir),
    /// `!P` / `?P`.
    Msg(Dir, Payload),
    /// `⊕{l: T, …}` (internal) / `&{l: T, …}` (external). Branches are
    /// kept sorted by label; constructors enforce this.
    Choice(Dir, Vec<(Name, CfType)>),
    /// `T;U`
    Seq(Box<CfType>, Box<CfType>),
    /// `rec x.T` (equirecursive)
    Rec(Name, Box<CfType>),
    Var(Name),
    /// `∀x.T` — only what the translated benchmark instances need
    /// (polymorphic session tails / the quantifier mutation).
    Forall(Name, Box<CfType>),
}

impl CfType {
    pub fn seq(a: CfType, b: CfType) -> CfType {
        CfType::Seq(Box::new(a), Box::new(b))
    }

    /// Sequences a list of segments (right-nested), `Skip` if empty.
    pub fn seq_all(parts: impl IntoIterator<Item = CfType>) -> CfType {
        let parts: Vec<CfType> = parts.into_iter().collect();
        let Some((last, init)) = parts.split_last() else {
            return CfType::Skip;
        };
        init.iter()
            .rev()
            .fold(last.clone(), |acc, t| CfType::seq(t.clone(), acc))
    }

    pub fn rec(x: impl Into<Name>, body: CfType) -> CfType {
        CfType::Rec(x.into(), Box::new(body))
    }

    pub fn var(x: impl Into<Name>) -> CfType {
        CfType::Var(x.into())
    }

    pub fn forall(x: impl Into<Name>, body: CfType) -> CfType {
        CfType::Forall(x.into(), Box::new(body))
    }

    /// Builds a choice with branches sorted by label.
    pub fn choice(dir: Dir, mut branches: Vec<(Name, CfType)>) -> CfType {
        branches.sort_by(|a, b| a.0.cmp(&b.0));
        CfType::Choice(dir, branches)
    }

    pub fn msg(dir: Dir, payload: Payload) -> CfType {
        CfType::Msg(dir, payload)
    }

    /// Number of AST nodes.
    pub fn node_count(&self) -> usize {
        match self {
            CfType::Skip | CfType::End(_) | CfType::Var(_) | CfType::Msg(..) => 1,
            CfType::Choice(_, bs) => 1 + bs.iter().map(|(_, t)| t.node_count()).sum::<usize>(),
            CfType::Seq(a, b) => 1 + a.node_count() + b.node_count(),
            CfType::Rec(_, t) | CfType::Forall(_, t) => 1 + t.node_count(),
        }
    }

    /// Capture-avoiding substitution `self[replacement/x]` (used for
    /// unfolding `rec`; the replacement is always closed in that use).
    pub fn subst(&self, x: &str, replacement: &CfType) -> CfType {
        match self {
            CfType::Skip | CfType::End(_) | CfType::Msg(..) => self.clone(),
            CfType::Var(v) => {
                if v == x {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            CfType::Choice(d, bs) => CfType::Choice(
                *d,
                bs.iter()
                    .map(|(l, t)| (l.clone(), t.subst(x, replacement)))
                    .collect(),
            ),
            CfType::Seq(a, b) => CfType::seq(a.subst(x, replacement), b.subst(x, replacement)),
            CfType::Rec(v, body) | CfType::Forall(v, body) => {
                if v == x {
                    self.clone() // shadowed
                } else {
                    let rebuilt = body.subst(x, replacement);
                    match self {
                        CfType::Rec(..) => CfType::rec(v.clone(), rebuilt),
                        _ => CfType::forall(v.clone(), rebuilt),
                    }
                }
            }
        }
    }

    /// Checks contractivity: every `rec x.T` must expose a communication
    /// constructor before reaching `x` (no `rec x. x` or `rec x. Skip;x`).
    pub fn is_contractive(&self) -> bool {
        fn guarded(t: &CfType, pending: &mut Vec<Name>) -> bool {
            match t {
                CfType::Skip
                | CfType::End(_)
                | CfType::Msg(..)
                | CfType::Choice(..)
                | CfType::Forall(..) => true,
                CfType::Var(v) => !pending.iter().any(|p| p == v),
                CfType::Seq(a, b) => {
                    if !guarded(a, pending) {
                        return false;
                    }
                    // If `a` can be Skip-like (empty), `b` must also be
                    // guarded with the same pending set.
                    if can_be_empty(a) {
                        guarded(b, pending)
                    } else {
                        true
                    }
                }
                CfType::Rec(v, body) => {
                    pending.push(v.clone());
                    let ok = guarded(body, pending);
                    pending.pop();
                    ok
                }
            }
        }
        fn can_be_empty(t: &CfType) -> bool {
            match t {
                CfType::Skip => true,
                CfType::Seq(a, b) => can_be_empty(a) && can_be_empty(b),
                CfType::Rec(_, body) => can_be_empty(body),
                _ => false,
            }
        }
        fn walk(t: &CfType) -> bool {
            match t {
                CfType::Skip | CfType::End(_) | CfType::Msg(..) | CfType::Var(_) => true,
                CfType::Choice(_, bs) => bs.iter().all(|(_, t)| walk(t)),
                CfType::Seq(a, b) => walk(a) && walk(b),
                CfType::Forall(_, body) => walk(body),
                CfType::Rec(v, body) => {
                    let mut pending = vec![v.clone()];
                    guarded(body, &mut pending) && walk(body)
                }
            }
        }
        walk(self)
    }

    /// Free (session) type variables.
    pub fn free_vars(&self) -> Vec<Name> {
        fn go(t: &CfType, bound: &mut Vec<Name>, acc: &mut Vec<Name>) {
            match t {
                CfType::Skip | CfType::End(_) | CfType::Msg(..) => {}
                CfType::Var(v) => {
                    if !bound.iter().any(|b| b == v) && !acc.iter().any(|a| a == v) {
                        acc.push(v.clone());
                    }
                }
                CfType::Choice(_, bs) => {
                    for (_, t) in bs {
                        go(t, bound, acc);
                    }
                }
                CfType::Seq(a, b) => {
                    go(a, bound, acc);
                    go(b, bound, acc);
                }
                CfType::Rec(v, body) | CfType::Forall(v, body) => {
                    bound.push(v.clone());
                    go(body, bound, acc);
                    bound.pop();
                }
            }
        }
        let mut acc = Vec::new();
        go(self, &mut Vec::new(), &mut acc);
        acc
    }
}

impl fmt::Display for CfType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn atom(t: &CfType) -> bool {
            matches!(
                t,
                CfType::Skip
                    | CfType::End(_)
                    | CfType::Msg(..)
                    | CfType::Var(_)
                    | CfType::Choice(..)
            )
        }
        match self {
            CfType::Skip => write!(f, "Skip"),
            CfType::End(Dir::Out) => write!(f, "End!"),
            CfType::End(Dir::In) => write!(f, "End?"),
            CfType::Msg(Dir::Out, p) => write!(f, "!{p}"),
            CfType::Msg(Dir::In, p) => write!(f, "?{p}"),
            CfType::Choice(d, bs) => {
                write!(f, "{}{{", if *d == Dir::Out { "+" } else { "&" })?;
                for (i, (l, t)) in bs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}: {t}")?;
                }
                write!(f, "}}")
            }
            CfType::Seq(a, b) => {
                if atom(a) {
                    write!(f, "{a}")?;
                } else {
                    write!(f, "({a})")?;
                }
                write!(f, "; ")?;
                if atom(b) || matches!(**b, CfType::Seq(..)) {
                    write!(f, "{b}")
                } else {
                    write!(f, "({b})")
                }
            }
            CfType::Rec(x, body) => write!(f, "(rec {x}. {body})"),
            CfType::Var(x) => write!(f, "{x}"),
            CfType::Forall(x, body) => write!(f, "(forall {x}. {body})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The FreeST counterpart of the paper's Fig. 9:
    /// `(rec r. &{More: ?Int; r; Skip, Quit: Skip}); (!(Char, End!); End!)`
    pub fn fig9_type() -> CfType {
        let repeat = CfType::rec(
            "repeat0",
            CfType::choice(
                Dir::In,
                vec![
                    (
                        "More".into(),
                        CfType::seq_all([
                            CfType::Msg(Dir::In, Payload::Int),
                            CfType::var("repeat0"),
                            CfType::Skip,
                        ]),
                    ),
                    ("Quit".into(), CfType::Skip),
                ],
            ),
        );
        let tail = CfType::seq(
            CfType::Msg(
                Dir::Out,
                Payload::Pair(
                    Box::new(Payload::Char),
                    Box::new(Payload::Session(Box::new(CfType::End(Dir::Out)))),
                ),
            ),
            CfType::End(Dir::Out),
        );
        CfType::seq(repeat, tail)
    }

    #[test]
    fn fig9_displays_like_the_paper() {
        let t = fig9_type();
        let s = t.to_string();
        assert!(s.contains("rec repeat0"), "{s}");
        assert!(s.contains("More: ?Int; repeat0; Skip"), "{s}");
        assert!(s.contains("Quit: Skip"), "{s}");
        assert!(s.contains("!(Char, End!)"), "{s}");
    }

    #[test]
    fn contractivity() {
        assert!(fig9_type().is_contractive());
        let bad = CfType::rec("x", CfType::var("x"));
        assert!(!bad.is_contractive());
        let sneaky = CfType::rec("x", CfType::seq(CfType::Skip, CfType::var("x")));
        assert!(!sneaky.is_contractive());
        let ok = CfType::rec(
            "x",
            CfType::seq(CfType::Msg(Dir::Out, Payload::Int), CfType::var("x")),
        );
        assert!(ok.is_contractive());
    }

    #[test]
    fn substitution_respects_shadowing() {
        let t = CfType::rec("x", CfType::var("x"));
        assert_eq!(t.subst("x", &CfType::Skip), t);
        let u = CfType::seq(CfType::var("y"), CfType::rec("y", CfType::var("y")));
        let r = u.subst("y", &CfType::End(Dir::Out));
        assert_eq!(
            r,
            CfType::seq(CfType::End(Dir::Out), CfType::rec("y", CfType::var("y")))
        );
    }

    #[test]
    fn choice_branches_sorted() {
        let c = CfType::choice(
            Dir::Out,
            vec![("Z".into(), CfType::Skip), ("A".into(), CfType::Skip)],
        );
        let CfType::Choice(_, bs) = &c else { panic!() };
        assert_eq!(bs[0].0, "A");
    }

    #[test]
    fn node_count_and_free_vars() {
        let t = fig9_type();
        assert!(t.node_count() > 8);
        assert!(t.free_vars().is_empty());
        let open = CfType::seq(CfType::var("a"), CfType::Skip);
        assert_eq!(open.free_vars(), vec!["a".to_string()]);
    }
}
