//! Translation of context-free session types into *simple grammars*
//! (Almeida et al. 2020, "Deciding the bisimilarity of context-free
//! session types").
//!
//! A simple grammar is a context-free grammar in Greibach normal form
//! where each (nonterminal, action) pair has at most one production. A
//! session type denotes a word of nonterminals; its behaviour is the
//! labelled transition system on words, rewriting the leftmost
//! nonterminal:
//!
//! ```text
//! X α --a--> γ α    whenever X --a--> γ
//! ```
//!
//! Type equivalence is bisimilarity of the corresponding words
//! ([`crate::bisim`]).
//!
//! Construction notes:
//! * `End!`/`End?` produce to a dedicated stuck nonterminal [`Grammar::DEAD`]
//!   with no productions, making `End` absorbing (whatever follows is
//!   unreachable) — `End;T ≈ End`.
//! * a free type variable is a nonterminal with a unique action producing
//!   ε, so `α;S ≡ α;T` iff `S ≡ T`, and `α ≢ β`;
//! * `∀x.T` contributes a quantifier action whose bound variable is
//!   canonically renamed by nesting depth, realizing α-equivalence;
//! * `rec x.T` is unfolded lazily and memoized, so each distinct
//!   recursive subterm becomes one nonterminal.

use crate::types::{CfType, Dir, Name, Payload};
use std::collections::HashMap;
use std::fmt;

/// A grammar action (terminal symbol).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Action {
    End(Dir),
    Msg(Dir, Payload),
    Choice(Dir, Name),
    /// Free type variable heads.
    Var(Name),
    /// Quantifier introduction (bound variable canonicalized).
    Forall,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::End(Dir::Out) => write!(f, "end!"),
            Action::End(Dir::In) => write!(f, "end?"),
            Action::Msg(Dir::Out, p) => write!(f, "!{p}"),
            Action::Msg(Dir::In, p) => write!(f, "?{p}"),
            Action::Choice(Dir::Out, l) => write!(f, "+{l}"),
            Action::Choice(Dir::In, l) => write!(f, "&{l}"),
            Action::Var(v) => write!(f, "var:{v}"),
            Action::Forall => write!(f, "forall"),
        }
    }
}

/// Index of a nonterminal in the grammar.
pub type NonTerm = u32;

/// A word of nonterminals (a state of the LTS).
pub type Word = Vec<NonTerm>;

/// Norm of a nonterminal: length of its shortest derivation to ε, or
/// `None` if it has none (unnormed).
pub type Norm = Option<u64>;

/// In-scope `rec` binders during translation.
type RecEnv = Vec<(Name, NonTerm)>;

/// Memo-table key: a type at a quantifier depth with the nonterminals of
/// its free recursion variables.
type MemoKey = (CfType, u32, RecEnv);

fn lookup(env: &RecEnv, v: &str) -> Option<NonTerm> {
    env.iter().rev().find(|(n, _)| n == v).map(|(_, x)| *x)
}

/// A simple grammar produced from one or more session types.
#[derive(Debug, Default)]
pub struct Grammar {
    /// Productions per nonterminal, sorted by action.
    prods: Vec<Vec<(Action, Word)>>,
    /// Memoization of translated types, keyed by quantifier depth and the
    /// nonterminals bound to their free recursion variables.
    memo: HashMap<MemoKey, NonTerm>,
    norms: Vec<Norm>,
    norms_dirty: bool,
}

impl Grammar {
    pub fn new() -> Grammar {
        let mut g = Grammar::default();
        // Nonterminal 0 is DEAD: no productions (stuck ≠ ε only in that ε
        // may continue with the rest of the word — both have no
        // transitions in isolation, but DEAD absorbs its suffix).
        g.prods.push(Vec::new());
        g.norms.push(None);
        g
    }

    /// The distinguished stuck nonterminal.
    pub const DEAD: NonTerm = 0;

    /// Number of nonterminals (including the reserved [`Grammar::DEAD`]).
    pub fn len(&self) -> usize {
        self.prods.len()
    }

    /// Never empty: [`Grammar::DEAD`] always exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Productions of `x`, sorted by action.
    pub fn productions(&self, x: NonTerm) -> &[(Action, Word)] {
        &self.prods[x as usize]
    }

    /// Allocates a fresh nonterminal with no productions yet. Use with
    /// [`Grammar::set_productions`] to build grammars directly (e.g. from
    /// protocol declarations) without an intermediate [`CfType`].
    pub fn fresh_nonterm(&mut self) -> NonTerm {
        let x = self.prods.len() as NonTerm;
        self.prods.push(Vec::new());
        self.norms.push(None);
        self.norms_dirty = true;
        x
    }

    /// Sets the productions of a nonterminal created with
    /// [`Grammar::fresh_nonterm`]. Productions are sorted by action;
    /// duplicate actions would break the simple-grammar invariant and are
    /// rejected.
    ///
    /// # Panics
    /// Panics if two productions share an action.
    pub fn set_productions(&mut self, x: NonTerm, mut prods: Vec<(Action, Word)>) {
        prods.sort_by(|a, b| a.0.cmp(&b.0));
        for pair in prods.windows(2) {
            assert!(
                pair[0].0 != pair[1].0,
                "duplicate action {} would make the grammar non-simple",
                pair[0].0
            );
        }
        self.prods[x as usize] = prods;
        self.norms_dirty = true;
    }

    /// Translates `t` into a word of nonterminals, creating productions as
    /// needed.
    ///
    /// # Panics
    /// Panics if `t` is not contractive (callers check
    /// [`CfType::is_contractive`] first).
    pub fn word_of(&mut self, t: &CfType) -> Word {
        self.norms_dirty = true;
        self.grm(t, 0, &mut Vec::new())
    }

    fn grm(&mut self, t: &CfType, depth: u32, env: &mut RecEnv) -> Word {
        match t {
            CfType::Skip => Vec::new(),
            CfType::Seq(a, b) => {
                let mut w = self.grm(a, depth, env);
                w.extend(self.grm(b, depth, env));
                w
            }
            // A rec-bound variable *is* its nonterminal.
            CfType::Var(v) if lookup(env, v).is_some() => {
                vec![lookup(env, v).expect("checked")]
            }
            _ => vec![self.nonterm(t, depth, env)],
        }
    }

    /// Returns the nonterminal for a non-`Skip`, non-`Seq` head type.
    ///
    /// Recursion is translated as a *system of equations*: `rec x.T` binds
    /// `x` to a fresh nonterminal in `env` rather than substituting, so
    /// the grammar stays linear in the size of the type (substitution
    /// would duplicate subterms exponentially under nested recursion).
    /// Memoization keys include the bindings for the type's free
    /// variables, so identical subterms in different scopes stay distinct.
    fn nonterm(&mut self, t: &CfType, depth: u32, env: &mut RecEnv) -> NonTerm {
        let relevant: Vec<(Name, NonTerm)> = {
            let fv = t.free_vars();
            env.iter()
                .filter(|(n, _)| fv.iter().any(|v| v == n))
                .cloned()
                .collect()
        };
        let key = (t.clone(), depth, relevant);
        if let Some(&x) = self.memo.get(&key) {
            return x;
        }
        let x = self.prods.len() as NonTerm;
        self.prods.push(Vec::new());
        self.norms.push(None);
        self.memo.insert(key, x);
        let mut prods = match t {
            CfType::Skip | CfType::Seq(..) => unreachable!("handled by grm"),
            CfType::End(d) => vec![(Action::End(*d), vec![Self::DEAD])],
            CfType::Msg(d, p) => vec![(Action::Msg(*d, p.clone()), Vec::new())],
            CfType::Choice(d, bs) => bs
                .iter()
                .map(|(l, cont)| (Action::Choice(*d, l.clone()), self.grm(cont, depth, env)))
                .collect(),
            CfType::Var(v) => vec![(Action::Var(v.clone()), Vec::new())],
            CfType::Forall(v, body) => {
                // Canonical bound-variable name by depth: α-equivalent
                // types yield identical grammars.
                let canon = format!("$bv{depth}");
                let renamed = body.subst(v, &CfType::Var(canon));
                vec![(Action::Forall, self.grm(&renamed, depth + 1, env))]
            }
            CfType::Rec(v, body) => {
                env.push((v.clone(), x));
                let w = self.grm(body, depth, env);
                env.pop();
                assert!(
                    !w.is_empty(),
                    "non-contractive recursive type reached grammar construction"
                );
                let head = w[0];
                let rest = &w[1..];
                assert!(
                    head != x && !self.prods[head as usize].is_empty(),
                    "unguarded recursion reached grammar construction"
                );
                self.prods[head as usize]
                    .iter()
                    .map(|(a, gamma)| {
                        let mut out = gamma.clone();
                        out.extend_from_slice(rest);
                        (a.clone(), out)
                    })
                    .collect()
            }
        };
        prods.sort_by(|a, b| a.0.cmp(&b.0));
        self.prods[x as usize] = prods;
        x
    }

    /// Norm of a nonterminal (computing norms on demand).
    pub fn norm(&mut self, x: NonTerm) -> Norm {
        if self.norms_dirty {
            self.compute_norms();
        }
        self.norms[x as usize]
    }

    /// Norm of a word: sum of member norms, `None` if any member is
    /// unnormed.
    pub fn word_norm(&mut self, w: &[NonTerm]) -> Norm {
        let mut total: u64 = 0;
        for &x in w {
            total = total.saturating_add(self.norm(x)?);
        }
        Some(total)
    }

    /// For a normed `x`, one production starting its shortest derivation
    /// to ε (ties broken by action order).
    pub fn norm_reducing_production(&mut self, x: NonTerm) -> Option<(Action, Word)> {
        let _ = self.norm(x)?;
        let mut best: Option<(u64, &(Action, Word))> = None;
        // Norms are fixed now; scan productions for the cheapest successor.
        for p in &self.prods[x as usize] {
            let mut cost: Option<u64> = Some(0);
            for &y in &p.1 {
                cost = match (cost, self.norms[y as usize]) {
                    (Some(c), Some(n)) => Some(c.saturating_add(n)),
                    _ => None,
                };
            }
            if let Some(c) = cost {
                if best.map_or(true, |(b, _)| c < b) {
                    best = Some((c, p));
                }
            }
        }
        best.map(|(_, p)| p.clone())
    }

    fn compute_norms(&mut self) {
        // Least fixed point: norm(X) = 1 + min over productions of the sum
        // of successor norms.
        let n = self.prods.len();
        let mut norms: Vec<Norm> = vec![None; n];
        loop {
            let mut changed = false;
            for x in 0..n {
                let mut best: Norm = None;
                for (_, w) in &self.prods[x] {
                    let mut total: Option<u64> = Some(1);
                    for &y in w {
                        total = match (total, norms[y as usize]) {
                            (Some(t), Some(ny)) => Some(t.saturating_add(ny)),
                            _ => None,
                        };
                    }
                    if let Some(t) = total {
                        best = Some(best.map_or(t, |b: u64| b.min(t)));
                    }
                }
                if best.is_some() && best != norms[x] {
                    let better = match (norms[x], best) {
                        (None, _) => true,
                        (Some(old), Some(new)) => new < old,
                        _ => false,
                    };
                    if better {
                        norms[x] = best;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.norms = norms;
        self.norms_dirty = false;
    }

    /// Truncates a word after its first unnormed symbol (behaviour beyond
    /// it is unreachable: an unnormed symbol never derives ε).
    pub fn truncate(&mut self, w: &[NonTerm]) -> Word {
        let mut out = Vec::with_capacity(w.len());
        for &x in w {
            out.push(x);
            if self.norm(x).is_none() {
                break;
            }
        }
        out
    }

    /// The transition of `w` under `a`, if any (grammars are simple, so
    /// it is unique).
    pub fn step(&self, w: &[NonTerm], a: &Action) -> Option<Word> {
        let (&head, rest) = w.split_first()?;
        let prods = &self.prods[head as usize];
        let ix = prods.binary_search_by(|(pa, _)| pa.cmp(a)).ok()?;
        let mut out = prods[ix].1.clone();
        out.extend_from_slice(rest);
        Some(out)
    }

    /// The actions available from `w` (those of its leftmost symbol).
    pub fn actions(&self, w: &[NonTerm]) -> Vec<Action> {
        match w.first() {
            None => Vec::new(),
            Some(&x) => self.prods[x as usize]
                .iter()
                .map(|(a, _)| a.clone())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(d: Dir) -> CfType {
        CfType::Msg(d, Payload::Int)
    }

    #[test]
    fn skip_is_the_empty_word() {
        let mut g = Grammar::new();
        assert!(g.word_of(&CfType::Skip).is_empty());
        let w = g.word_of(&CfType::seq(CfType::Skip, CfType::Skip));
        assert!(w.is_empty());
    }

    #[test]
    fn message_has_single_production_to_epsilon() {
        let mut g = Grammar::new();
        let w = g.word_of(&msg(Dir::Out));
        assert_eq!(w.len(), 1);
        let prods = g.productions(w[0]);
        assert_eq!(prods.len(), 1);
        assert!(prods[0].1.is_empty());
        assert_eq!(g.norm(w[0]), Some(1));
    }

    #[test]
    fn end_is_absorbing_and_unnormed() {
        let mut g = Grammar::new();
        let w = g.word_of(&CfType::End(Dir::Out));
        assert_eq!(g.norm(w[0]), None);
        let after = g.step(&w, &Action::End(Dir::Out)).unwrap();
        assert_eq!(after, vec![Grammar::DEAD]);
        assert!(g.actions(&after).is_empty());
    }

    #[test]
    fn recursion_is_memoized_and_unfolds() {
        // rec x. !Int; x — one nonterminal, production back to itself.
        let mut g = Grammar::new();
        let t = CfType::rec("x", CfType::seq(msg(Dir::Out), CfType::var("x")));
        let w = g.word_of(&t);
        assert_eq!(w.len(), 1);
        let next = g.step(&w, &Action::Msg(Dir::Out, Payload::Int)).unwrap();
        assert_eq!(next, w);
        // Unnormed: it never terminates.
        assert_eq!(g.norm(w[0]), None);
        // Re-translation hits the memo table.
        let before = g.len();
        let w2 = g.word_of(&t);
        assert_eq!(w, w2);
        assert_eq!(g.len(), before);
    }

    #[test]
    fn nontail_recursion_grows_words() {
        // rec x. &{L: Skip, N: x; x} — non-regular: words can grow.
        let t = CfType::rec(
            "x",
            CfType::choice(
                Dir::In,
                vec![
                    ("L".into(), CfType::Skip),
                    ("N".into(), CfType::seq(CfType::var("x"), CfType::var("x"))),
                ],
            ),
        );
        let mut g = Grammar::new();
        let w = g.word_of(&t);
        assert_eq!(w.len(), 1);
        let grown = g.step(&w, &Action::Choice(Dir::In, "N".into())).unwrap();
        assert_eq!(grown.len(), 2);
        assert_eq!(g.norm(w[0]), Some(1)); // take L
        assert_eq!(g.word_norm(&grown), Some(2));
    }

    #[test]
    fn forall_canonicalizes_bound_variables() {
        let mut g = Grammar::new();
        let t1 = CfType::forall("a", CfType::seq(CfType::var("a"), CfType::Skip));
        let t2 = CfType::forall("b", CfType::seq(CfType::var("b"), CfType::Skip));
        let w1 = g.word_of(&t1);
        let w2 = g.word_of(&t2);
        // The nonterminals are distinct (memoized on the source type) but
        // their productions coincide after canonical renaming.
        assert_eq!(
            g.productions(w1[0]).to_vec(),
            g.productions(w2[0]).to_vec(),
            "α-equivalent quantified types have identical productions"
        );
    }

    #[test]
    fn distinct_free_variables_have_distinct_actions() {
        let mut g = Grammar::new();
        let wa = g.word_of(&CfType::var("a"));
        let wb = g.word_of(&CfType::var("b"));
        assert_ne!(g.actions(&wa), g.actions(&wb));
        // Variables are normed (they complete and let the suffix run).
        assert_eq!(g.norm(wa[0]), Some(1));
    }

    #[test]
    fn norm_reducing_production_picks_cheapest() {
        let t = CfType::rec(
            "x",
            CfType::choice(
                Dir::In,
                vec![
                    ("Stop".into(), CfType::Skip),
                    ("Go".into(), CfType::seq(CfType::var("x"), CfType::var("x"))),
                ],
            ),
        );
        let mut g = Grammar::new();
        let w = g.word_of(&t);
        let (a, gamma) = g.norm_reducing_production(w[0]).unwrap();
        assert_eq!(a, Action::Choice(Dir::In, "Stop".into()));
        assert!(gamma.is_empty());
    }

    #[test]
    fn truncate_cuts_after_unnormed() {
        let mut g = Grammar::new();
        let end = g.word_of(&CfType::End(Dir::Out))[0];
        let m = g.word_of(&msg(Dir::In))[0];
        let w = vec![m, end, m, m];
        assert_eq!(g.truncate(&w), vec![m, end]);
    }
}
