//! Bisimilarity of simple-grammar words — the FreeST-style equivalence
//! check for context-free session types.
//!
//! Because the grammars produced by deterministic session types are
//! *simple* (each nonterminal has at most one production per action),
//! bisimilarity coincides with trace equivalence and is decidable
//! [Korenjak & Hopcroft 1966; Almeida et al. 2020]. We implement the
//! classic scheme:
//!
//! 1. **Truncation**: behaviour beyond the first unnormed symbol of a word
//!    is unreachable, so words are cut there.
//! 2. **Coinductive expansion**: a pair of words is assumed bisimilar when
//!    revisited; otherwise both sides must offer the same actions and all
//!    successor pairs must be bisimilar.
//! 3. **Korenjak–Hopcroft splitting**: a pair `(Xα, Yβ)` with both heads
//!    normed and, wlog, `norm(X) ≤ norm(Y)` is replaced by the pairs
//!    `(Y, Xγ)` and `(α, γβ)`, where `Y =w=> γ` follows a norm-reducing
//!    word `w` of `X`. This keeps first components small and lets
//!    expansion terminate on non-regular (context-free) types.
//!
//! The procedure is **worst-case superlinear** (norms can be exponential
//! in the grammar size, and the pair space explodes) — this is exactly the
//! behaviour the paper's Figure 10 benchmarks against AlgST's linear-time
//! check. A step budget bounds each query; exceeding it is reported as
//! [`BisimResult::Budget`], mirroring the paper's 2-minute timeouts.

use crate::grammar::{Grammar, NonTerm, Word};
use crate::types::CfType;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Outcome of a (budgeted) bisimilarity query.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BisimResult {
    Equivalent,
    NotEquivalent,
    /// The step budget was exhausted (the paper's "timed out").
    Budget,
}

/// Decides bisimilarity of two context-free session types with the given
/// step budget.
///
/// # Panics
/// Panics if either type is not contractive.
pub fn equivalent_types(t: &CfType, u: &CfType, budget: u64) -> BisimResult {
    assert!(t.is_contractive(), "lhs not contractive: {t}");
    assert!(u.is_contractive(), "rhs not contractive: {u}");
    let mut g = Grammar::new();
    let w1 = g.word_of(t);
    let w2 = g.word_of(u);
    bisimilar(&mut g, &w1, &w2, budget)
}

/// Decides bisimilarity of two words over a shared grammar.
pub fn bisimilar(g: &mut Grammar, w1: &[NonTerm], w2: &[NonTerm], budget: u64) -> BisimResult {
    bisimilar_with(g, w1, w2, budget, None)
}

/// Like [`bisimilar`], additionally bounded by a wall-clock timeout
/// (checked every 1024 steps) — the benchmark harness uses this to mirror
/// the paper's per-query timeout.
pub fn bisimilar_with(
    g: &mut Grammar,
    w1: &[NonTerm],
    w2: &[NonTerm],
    budget: u64,
    timeout: Option<Duration>,
) -> BisimResult {
    let mut checker = Checker {
        g,
        budget,
        steps: 0,
        deadline: timeout.map(|d| Instant::now() + d),
        assumed: HashSet::new(),
        stored: 0,
    };
    let a = checker.g.truncate(w1);
    let b = checker.g.truncate(w2);
    match checker.check(a, b, 0) {
        Ok(true) => BisimResult::Equivalent,
        Ok(false) => BisimResult::NotEquivalent,
        Err(OutOfBudget) => BisimResult::Budget,
    }
}

struct OutOfBudget;

struct Checker<'g> {
    g: &'g mut Grammar,
    budget: u64,
    steps: u64,
    deadline: Option<Instant>,
    /// Pairs assumed bisimilar (coinduction hypothesis).
    assumed: HashSet<(Word, Word)>,
    /// Total symbols stored in `assumed`, to bound memory.
    stored: u64,
}

/// Words longer than this abort the query as budget-exhausted — they only
/// arise on instances whose norms explode, exactly the cases the paper
/// reports as timeouts.
const MAX_WORD: usize = 1024;

/// Bound on the DFS depth of the expansion, so a diverging search reports
/// budget exhaustion instead of exhausting memory.
const MAX_DEPTH: u32 = 8192;

/// Cap on symbols retained in the coinduction table (≈ tens of MB).
const MAX_STORED: u64 = 4_000_000;

impl Checker<'_> {
    fn tick(&mut self) -> Result<(), OutOfBudget> {
        self.steps += 1;
        if self.steps > self.budget {
            return Err(OutOfBudget);
        }
        if self.steps % 1024 == 0 {
            if let Some(deadline) = self.deadline {
                if Instant::now() > deadline {
                    return Err(OutOfBudget);
                }
            }
        }
        Ok(())
    }

    fn check(&mut self, u: Word, v: Word, depth: u32) -> Result<bool, OutOfBudget> {
        self.tick()?;
        if depth > MAX_DEPTH {
            return Err(OutOfBudget);
        }
        let mut u = self.g.truncate(&u);
        let mut v = self.g.truncate(&v);
        if u == v {
            return Ok(true);
        }
        if u.len() > MAX_WORD || v.len() > MAX_WORD {
            return Err(OutOfBudget);
        }
        // Left-cancellation: simple grammars are deterministic, so a
        // common normed head can be stripped — Xα ~ Xβ iff α ~ β.
        // (Truncation guarantees every non-final symbol is normed; equal
        // final symbols make the words equal, handled above.)
        {
            let common = u.iter().zip(v.iter()).take_while(|(a, b)| a == b).count();
            let strip = common
                .min(u.len().saturating_sub(1))
                .min(v.len().saturating_sub(1));
            if strip > 0 {
                u.drain(..strip);
                v.drain(..strip);
            }
        }
        if u == v {
            return Ok(true);
        }
        let key = if u <= v {
            (u.clone(), v.clone())
        } else {
            (v.clone(), u.clone())
        };
        self.stored += (u.len() + v.len()) as u64;
        if self.stored > MAX_STORED {
            return Err(OutOfBudget);
        }
        if !self.assumed.insert(key) {
            return Ok(true); // coinductive hypothesis
        }

        // Korenjak–Hopcroft split when both sides are multi-symbol words
        // with normed heads (truncation guarantees normed heads for
        // len ≥ 2).
        if u.len() >= 2 && v.len() >= 2 {
            return self.split(u, v, depth);
        }

        self.expand(u, v, depth)
    }

    /// Synchronized expansion: same action sets, all successors bisimilar.
    fn expand(&mut self, u: Word, v: Word, depth: u32) -> Result<bool, OutOfBudget> {
        let au = self.g.actions(&u);
        let av = self.g.actions(&v);
        if au != av {
            return Ok(false);
        }
        for a in au {
            let su = self.g.step(&u, &a).expect("action taken from u's menu");
            let sv = self.g.step(&v, &a).expect("menus are equal");
            if !self.check(su, sv, depth + 1)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// KH decomposition of `(Xα, Yβ)` with `norm(X) ≤ norm(Y)` (swapping
    /// as needed) into `(Y, Xγ)` and `(α, γβ)` where `Y =w=> γ` along a
    /// norm-reducing word `w` of `X`.
    fn split(&mut self, u: Word, v: Word, depth: u32) -> Result<bool, OutOfBudget> {
        let (x, alpha) = u.split_first().expect("len >= 2");
        let (y, beta) = v.split_first().expect("len >= 2");
        let nx = self.g.norm(*x).expect("truncation leaves normed heads");
        let ny = self.g.norm(*y).expect("truncation leaves normed heads");
        let (x, alpha, y, beta) = if nx <= ny {
            (*x, alpha.to_vec(), *y, beta.to_vec())
        } else {
            (*y, beta.to_vec(), *x, alpha.to_vec())
        };

        // Follow X's norm-reducing derivation on [Y]. Each simulated step
        // costs budget — norms can be exponential, and that cost is the
        // point of the benchmark.
        let mut xword: Word = vec![x];
        let mut yword: Word = vec![y];
        while !xword.is_empty() {
            self.tick()?;
            if xword.len() > MAX_WORD || yword.len() > MAX_WORD {
                return Err(OutOfBudget);
            }
            let head = xword[0];
            let (a, gamma) = self
                .g
                .norm_reducing_production(head)
                .expect("heads on a norm-reducing path are normed");
            let mut nx = gamma;
            nx.extend_from_slice(&xword[1..]);
            xword = nx;
            match self.g.step(&yword, &a) {
                Some(next) => yword = next,
                // Y cannot follow one of X's traces: not bisimilar.
                None => return Ok(false),
            }
        }
        let gamma = yword;

        // (Y, X·γ)
        let mut xg = vec![x];
        xg.extend_from_slice(&gamma);
        if !self.check(vec![y], xg, depth + 1)? {
            return Ok(false);
        }
        // (α, γ·β)
        let mut gb = gamma;
        gb.extend_from_slice(&beta);
        self.check(alpha, gb, depth + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Dir, Payload};

    const BUDGET: u64 = 1_000_000;

    fn eq(t: &CfType, u: &CfType) -> BisimResult {
        equivalent_types(t, u, BUDGET)
    }

    fn out_int() -> CfType {
        CfType::Msg(Dir::Out, Payload::Int)
    }

    fn in_int() -> CfType {
        CfType::Msg(Dir::In, Payload::Int)
    }

    #[test]
    fn reflexive_on_samples() {
        let samples = [
            CfType::Skip,
            CfType::End(Dir::Out),
            CfType::seq(out_int(), CfType::End(Dir::In)),
            CfType::rec("x", CfType::seq(out_int(), CfType::var("x"))),
        ];
        for t in &samples {
            assert_eq!(eq(t, t), BisimResult::Equivalent, "{t}");
        }
    }

    #[test]
    fn skip_is_unit_of_seq() {
        let t = CfType::seq(CfType::Skip, CfType::seq(out_int(), CfType::Skip));
        assert_eq!(eq(&t, &out_int()), BisimResult::Equivalent);
    }

    #[test]
    fn seq_is_associative() {
        let a = CfType::seq(out_int(), CfType::seq(in_int(), CfType::End(Dir::Out)));
        let b = CfType::seq(CfType::seq(out_int(), in_int()), CfType::End(Dir::Out));
        assert_eq!(eq(&a, &b), BisimResult::Equivalent);
    }

    #[test]
    fn end_is_absorbing() {
        let a = CfType::seq(CfType::End(Dir::Out), out_int());
        let b = CfType::End(Dir::Out);
        assert_eq!(eq(&a, &b), BisimResult::Equivalent);
        // But End! ≠ End?
        assert_eq!(
            eq(&CfType::End(Dir::Out), &CfType::End(Dir::In)),
            BisimResult::NotEquivalent
        );
    }

    #[test]
    fn direction_and_payload_matter() {
        assert_eq!(eq(&out_int(), &in_int()), BisimResult::NotEquivalent);
        assert_eq!(
            eq(&out_int(), &CfType::Msg(Dir::Out, Payload::Str)),
            BisimResult::NotEquivalent
        );
    }

    #[test]
    fn unfolding_is_equivalent() {
        // rec x. !Int;x  ≡  !Int; rec x. !Int;x
        let t = CfType::rec("x", CfType::seq(out_int(), CfType::var("x")));
        let unfolded = CfType::seq(out_int(), t.clone());
        assert_eq!(eq(&t, &unfolded), BisimResult::Equivalent);
    }

    #[test]
    fn renamed_recursion_is_equivalent() {
        let t = CfType::rec("x", CfType::seq(out_int(), CfType::var("x")));
        let u = CfType::rec("y", CfType::seq(out_int(), CfType::var("y")));
        assert_eq!(eq(&t, &u), BisimResult::Equivalent);
    }

    #[test]
    fn context_free_tree_protocol_roundtrip() {
        // T = rec x. &{Leaf: Skip, Node: x; ?Int; x} — non-regular.
        let tree = |var: &str| {
            CfType::rec(
                var,
                CfType::choice(
                    Dir::In,
                    vec![
                        ("Leaf".into(), CfType::Skip),
                        (
                            "Node".into(),
                            CfType::seq_all([CfType::var(var), in_int(), CfType::var(var)]),
                        ),
                    ],
                ),
            )
        };
        let a = tree("x");
        let b = tree("t");
        assert_eq!(eq(&a, &b), BisimResult::Equivalent);
        // T;T ≢ T (different completion counts).
        let twice = CfType::seq(a.clone(), a.clone());
        assert_eq!(eq(&twice, &a), BisimResult::NotEquivalent);
        // But (T;T);T ≡ T;(T;T).
        let l = CfType::seq(twice.clone(), a.clone());
        let r = CfType::seq(a.clone(), twice);
        assert_eq!(eq(&l, &r), BisimResult::Equivalent);
    }

    #[test]
    fn distributivity_over_choice() {
        // ⊕{a: T1, b: T2}; U ≡ ⊕{a: T1;U, b: T2;U}
        let u = CfType::seq(in_int(), CfType::End(Dir::Out));
        let lhs = CfType::seq(
            CfType::choice(
                Dir::Out,
                vec![("a".into(), out_int()), ("b".into(), in_int())],
            ),
            u.clone(),
        );
        let rhs = CfType::choice(
            Dir::Out,
            vec![
                ("a".into(), CfType::seq(out_int(), u.clone())),
                ("b".into(), CfType::seq(in_int(), u)),
            ],
        );
        assert_eq!(eq(&lhs, &rhs), BisimResult::Equivalent);
    }

    #[test]
    fn fig9_nonequivalent_variant() {
        // ?Repeat Int …  vs  ?Repeat String …  (cf. paper Fig. 9)
        let repeat = |payload: Payload| {
            CfType::seq(
                CfType::rec(
                    "r",
                    CfType::choice(
                        Dir::In,
                        vec![
                            (
                                "More".into(),
                                CfType::seq(
                                    CfType::Msg(Dir::In, payload.clone()),
                                    CfType::var("r"),
                                ),
                            ),
                            ("Quit".into(), CfType::Skip),
                        ],
                    ),
                ),
                CfType::End(Dir::Out),
            )
        };
        assert_eq!(
            eq(&repeat(Payload::Int), &repeat(Payload::Str)),
            BisimResult::NotEquivalent
        );
        assert_eq!(
            eq(&repeat(Payload::Int), &repeat(Payload::Int)),
            BisimResult::Equivalent
        );
    }

    #[test]
    fn free_variables_compare_nominally() {
        let a = CfType::seq(CfType::var("a"), CfType::End(Dir::Out));
        let b = CfType::seq(CfType::var("b"), CfType::End(Dir::Out));
        assert_eq!(eq(&a, &a.clone()), BisimResult::Equivalent);
        assert_eq!(eq(&a, &b), BisimResult::NotEquivalent);
    }

    #[test]
    fn forall_alpha_equivalence() {
        let t = CfType::forall("a", CfType::seq(CfType::var("a"), CfType::End(Dir::In)));
        let u = CfType::forall("b", CfType::seq(CfType::var("b"), CfType::End(Dir::In)));
        assert_eq!(eq(&t, &u), BisimResult::Equivalent);
        // An extra quantifier is observable.
        let extra = CfType::forall("c", t.clone());
        assert_eq!(eq(&extra, &t), BisimResult::NotEquivalent);
    }

    #[test]
    fn budget_exhaustion_reported() {
        // An *equivalent* pair (renamed recursion) with a tiny budget.
        let mk = |v: &str| {
            CfType::rec(
                v,
                CfType::choice(
                    Dir::In,
                    vec![
                        ("L".into(), CfType::Skip),
                        (
                            "N".into(),
                            CfType::seq_all([CfType::var(v), in_int(), CfType::var(v)]),
                        ),
                    ],
                ),
            )
        };
        assert_eq!(equivalent_types(&mk("x"), &mk("y"), 3), BisimResult::Budget);
        assert_eq!(
            equivalent_types(&mk("x"), &mk("y"), 1_000_000),
            BisimResult::Equivalent
        );
    }

    #[test]
    fn stack_protocol_equivalences() {
        // The stack protocol from the CFST literature:
        // S = rec s. &{Push: ?Int; s; !Int; s, Done: Skip}
        let stack = CfType::rec(
            "s",
            CfType::choice(
                Dir::In,
                vec![
                    (
                        "Push".into(),
                        CfType::seq_all([in_int(), CfType::var("s"), out_int(), CfType::var("s")]),
                    ),
                    ("Done".into(), CfType::Skip),
                ],
            ),
        );
        // One unfolding is equivalent.
        let unfolded = CfType::choice(
            Dir::In,
            vec![
                (
                    "Push".into(),
                    CfType::seq_all([in_int(), stack.clone(), out_int(), stack.clone()]),
                ),
                ("Done".into(), CfType::Skip),
            ],
        );
        assert_eq!(eq(&stack, &unfolded), BisimResult::Equivalent);
    }
}
