//! # freest
//!
//! A self-contained implementation of **context-free session types** with
//! bisimulation-based type equivalence, in the style of the FreeST
//! language [Thiemann & Vasconcelos 2016; Almeida et al. 2019, 2020,
//! 2022]. It serves as the *baseline* system that the paper
//! *Parameterized Algebraic Protocols* (PLDI 2023) benchmarks its
//! linear-time equivalence against (Figure 10).
//!
//! * [`types`] — the CFST grammar: `Skip`, `;`, `!T`/`?T`, `⊕{}`/`&{}`,
//!   equirecursive `rec`, `End`, variables and quantifiers.
//! * [`grammar`] — translation into simple grammars (Greibach normal
//!   form) plus norms.
//! * [`bisim`] — the budgeted decision procedure (coinductive expansion +
//!   Korenjak–Hopcroft splitting). Worst-case superlinear, matching the
//!   baseline behaviour in the paper's evaluation.
//!
//! ```
//! use freest::{CfType, Dir, Payload};
//! use freest::bisim::{equivalent_types, BisimResult};
//!
//! // !Int; Skip ≡ !Int
//! let a = CfType::seq(CfType::Msg(Dir::Out, Payload::Int), CfType::Skip);
//! let b = CfType::Msg(Dir::Out, Payload::Int);
//! assert_eq!(equivalent_types(&a, &b, 10_000), BisimResult::Equivalent);
//! ```

pub mod bisim;
pub mod grammar;
pub mod types;

pub use bisim::{bisimilar, bisimilar_with, equivalent_types, BisimResult};
pub use grammar::{Action, Grammar, NonTerm, Word};
pub use types::{CfType, Dir, Name, Payload};
