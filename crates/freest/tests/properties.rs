//! Property-based tests for the FreeST baseline: the bisimilarity check
//! must be an equivalence relation and respect the CFST equational theory
//! (Skip-unit, associativity, distributivity, unfolding).

use freest::bisim::{equivalent_types, BisimResult};
use freest::{CfType, Dir, Payload};
use proptest::prelude::*;

const BUDGET: u64 = 400_000;

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Int),
        Just(Payload::Bool),
        Just(Payload::Char),
        Just(Payload::Str),
        Just(Payload::Unit),
    ]
}

fn arb_dir() -> impl Strategy<Value = Dir> {
    prop_oneof![Just(Dir::Out), Just(Dir::In)]
}

/// Closed, contractive CFSTs: recursion variables are introduced only
/// under a guarding Choice, by construction.
fn arb_cftype() -> impl Strategy<Value = CfType> {
    let leaf = prop_oneof![
        Just(CfType::Skip),
        arb_dir().prop_map(CfType::End),
        (arb_dir(), arb_payload()).prop_map(|(d, p)| CfType::Msg(d, p)),
    ];
    leaf.prop_recursive(5, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CfType::seq(a, b)),
            (arb_dir(), inner.clone(), inner.clone()).prop_map(|(d, a, b)| {
                CfType::choice(d, vec![("L".into(), a), ("R".into(), b)])
            }),
            // rec x. choice { L: body ; x , R: Skip } — always contractive.
            (arb_dir(), inner).prop_map(|(d, body)| {
                CfType::rec(
                    "rx",
                    CfType::choice(
                        d,
                        vec![
                            ("Go".into(), CfType::seq(body, CfType::var("rx"))),
                            ("Halt".into(), CfType::Skip),
                        ],
                    ),
                )
            }),
        ]
    })
}

fn eq(a: &CfType, b: &CfType) -> BisimResult {
    equivalent_types(a, b, BUDGET)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn strategy_is_contractive(t in arb_cftype()) {
        prop_assert!(t.is_contractive(), "{t}");
    }

    #[test]
    fn reflexive(t in arb_cftype()) {
        prop_assert_ne!(eq(&t, &t), BisimResult::NotEquivalent, "{}", t);
    }

    #[test]
    fn symmetric(a in arb_cftype(), b in arb_cftype()) {
        let ab = eq(&a, &b);
        let ba = eq(&b, &a);
        if ab != BisimResult::Budget && ba != BisimResult::Budget {
            prop_assert_eq!(ab, ba, "{} vs {}", a, b);
        }
    }

    #[test]
    fn skip_left_unit(t in arb_cftype()) {
        let wrapped = CfType::seq(CfType::Skip, t.clone());
        prop_assert_ne!(eq(&wrapped, &t), BisimResult::NotEquivalent, "{}", t);
    }

    #[test]
    fn skip_right_unit(t in arb_cftype()) {
        let wrapped = CfType::seq(t.clone(), CfType::Skip);
        prop_assert_ne!(eq(&wrapped, &t), BisimResult::NotEquivalent, "{}", t);
    }

    #[test]
    fn seq_associative(a in arb_cftype(), b in arb_cftype(), c in arb_cftype()) {
        let l = CfType::seq(CfType::seq(a.clone(), b.clone()), c.clone());
        let r = CfType::seq(a, CfType::seq(b, c));
        prop_assert_ne!(eq(&l, &r), BisimResult::NotEquivalent, "{} vs {}", l, r);
    }

    #[test]
    fn end_absorbs(d in arb_dir(), t in arb_cftype()) {
        let l = CfType::seq(CfType::End(d), t);
        let r = CfType::End(d);
        prop_assert_ne!(eq(&l, &r), BisimResult::NotEquivalent, "{}", l);
    }

    #[test]
    fn distributivity_over_choice(a in arb_cftype(), b in arb_cftype(), u in arb_cftype()) {
        let l = CfType::seq(
            CfType::choice(Dir::Out, vec![("L".into(), a.clone()), ("R".into(), b.clone())]),
            u.clone(),
        );
        let r = CfType::choice(
            Dir::Out,
            vec![
                ("L".into(), CfType::seq(a, u.clone())),
                ("R".into(), CfType::seq(b, u)),
            ],
        );
        prop_assert_ne!(eq(&l, &r), BisimResult::NotEquivalent, "{} vs {}", l, r);
    }

    #[test]
    fn direction_flip_distinguishes(p in arb_payload()) {
        let l = CfType::Msg(Dir::Out, p.clone());
        let r = CfType::Msg(Dir::In, p);
        prop_assert_eq!(eq(&l, &r), BisimResult::NotEquivalent);
    }

    #[test]
    fn extra_message_distinguishes(t in arb_cftype()) {
        // t ; !Int  vs  t — distinguishable whenever t is normed (can
        // complete); unnormed t absorbs, so restrict to that case.
        let extended = CfType::seq(t.clone(), CfType::Msg(Dir::Out, Payload::Int));
        let verdict = eq(&extended, &t);
        // Just require the checker to *decide* (no wrong Equivalent for
        // normed t is covered by the agreement tests; here we check it
        // never crashes and stays in budget on small inputs).
        prop_assert!(matches!(
            verdict,
            BisimResult::Equivalent | BisimResult::NotEquivalent | BisimResult::Budget
        ));
    }
}
