//! The unified error type of the `algst` facade.
//!
//! Every stage a [`Pipeline`](crate::Pipeline) runs — parse, resolve,
//! elaborate, check, run — reports through one [`enum@Error`], so
//! embedders match on a single type at the boundary instead of
//! re-wrapping four per-crate error enums. The underlying structured
//! errors are preserved (not stringified), and [`Error::span`] recovers
//! the source location where one is known.

use algst_syntax::span::Span;
use algst_syntax::ParseError;
use std::fmt;

/// Any error produced by a [`Pipeline`](crate::Pipeline) stage.
///
/// ```
/// let mut pipeline = algst::Pipeline::new();
/// let err = pipeline.check("main : Unit\nmain = !!").unwrap_err();
/// let algst::Error::Parse(parse) = &err else {
///     panic!("expected a parse error, got {err}");
/// };
/// // Parse errors carry their source span (1-based line/column).
/// assert_eq!(err.span().unwrap().line, parse.span.line);
/// assert_eq!(err.span().unwrap().line, 2);
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Error {
    /// Lexing or parsing failed; carries the offending [`Span`].
    Parse(ParseError),
    /// A protocol/datatype declaration is malformed (duplicate name,
    /// duplicate tag, unbound parameter, …).
    Decl(algst_core::protocol::DeclError),
    /// Elaboration or type checking rejected the program.
    Type(algst_check::TypeError),
    /// A standalone type string ([`Pipeline::parse_type`](crate::Pipeline::parse_type))
    /// did not resolve.
    Resolve(String),
    /// The interpreter failed ([`Pipeline::run`](crate::Pipeline::run)).
    Runtime(String),
}

impl Error {
    /// The source span the error points at, where the stage records one
    /// (currently: parse errors).
    pub fn span(&self) -> Option<Span> {
        match self {
            Error::Parse(e) => Some(e.span),
            _ => None,
        }
    }

    /// The pipeline stage that produced this error, as a stable label
    /// (`"parse"`, `"decl"`, `"type"`, `"resolve"`, `"runtime"`).
    pub fn stage(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Decl(_) => "decl",
            Error::Type(_) => "type",
            Error::Resolve(_) => "resolve",
            Error::Runtime(_) => "runtime",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Decl(e) => write!(f, "{e}"),
            Error::Type(e) => write!(f, "{e}"),
            Error::Resolve(m) => write!(f, "cannot resolve type: {m}"),
            Error::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<algst_check::CheckError> for Error {
    fn from(e: algst_check::CheckError) -> Error {
        match e {
            algst_check::CheckError::Parse(p) => Error::Parse(p),
            algst_check::CheckError::Decl(d) => Error::Decl(d),
            algst_check::CheckError::Type(t) => Error::Type(t),
        }
    }
}

impl From<algst_check::TypeError> for Error {
    fn from(e: algst_check::TypeError) -> Error {
        Error::Type(e)
    }
}
