//! # algst — Parameterized Algebraic Protocols in Rust
//!
//! A full reproduction of *Parameterized Algebraic Protocols* (Mordido,
//! Spaderna, Thiemann, Vasconcelos; PLDI 2023): the **AlgST** language of
//! algebraic protocols and session types with **linear-time** type
//! equivalence, together with everything needed to reproduce the paper's
//! evaluation against FreeST-style context-free session types.
//!
//! The embedding surface is **context-first**: construct a [`Session`]
//! (or a [`Pipeline`], which owns one) and every intern / normalize /
//! equivalence / check runs against *that* handle — two sessions share
//! nothing unless you make them siblings. One unified [`enum@Error`]
//! (structured, spans preserved) covers every stage at the boundary.
//!
//! ## Embedding in ten lines
//!
//! ```
//! let mut pipeline = algst::Pipeline::new(); // isolated engine
//! let module = pipeline
//!     .check("inc : Int -> Int\ninc x = x + 1\n\nmain : Unit\nmain = ()")
//!     .expect("type checks");
//! assert!(module.sig("inc").is_some());
//! assert!(pipeline
//!     .equivalent_src("!Int.End!", "Dual (?Int.End?)")
//!     .expect("both sides resolve"));
//! // Hand the warm store to a serving pool: both `equiv` and `check`
//! // ops will run against it — and against nothing else.
//! let engine = algst::server::Engine::with_session(2, pipeline.into_session());
//! assert!(engine.snapshot().nodes > 0);
//! ```
//!
//! This facade crate adds [`Pipeline`]/[`enum@Error`] and re-exports the
//! workspace:
//!
//! * [`core`] (`algst-core`) — kinds, types, protocol declarations,
//!   normalization (Fig. 3), the hash-consed/sharded stores, and
//!   [`Session`] — equivalence per Theorems 1–3;
//! * [`syntax`] (`algst-syntax`) — lexer/parser for the surface language;
//! * [`check`] (`algst-check`) — bidirectional typechecker (Figs. 4, 5)
//!   and process typing (Fig. 8);
//! * [`runtime`] (`algst-runtime`) — thread-and-channel interpreter
//!   (Figs. 6, 7);
//! * [`server`] (`algst-server`) — the JSON-lines batch service over a
//!   session-injected worker pool;
//! * [`freest`] — the baseline: context-free session types with
//!   bisimulation equivalence;
//! * [`gen`] (`algst-gen`) — benchmark instance generation, mutations and
//!   the AlgST↔FreeST translations (Fig. 9, App. E);
//! * [`conform`] (`algst-conform`) — the cross-layer differential fuzzer
//!   behind `algst fuzz`, with its delta-debugging reducer.
//!
//! ## Quickstart
//!
//! ```
//! use std::time::Duration;
//!
//! // An algebraic protocol, a sender, and a receiver — checked and run.
//! let module = algst::check::check_source(r#"
//! protocol IntsQ = MoreQ Int IntsQ | DoneQ
//!
//! sendAll : Int -> !IntsQ.End! -> Unit
//! sendAll n c =
//!   if n == 0 then select DoneQ [End!] c |> terminate
//!   else select MoreQ [End!] c |> sendInt [!IntsQ.End!] n |> sendAll (n - 1)
//!
//! sum : Int -> ?IntsQ.End? -> Unit
//! sum acc c = match c with {
//!   MoreQ c -> let (x, c) = receiveInt [?IntsQ.End?] c in sum (acc + x) c,
//!   DoneQ c -> let _ = printInt acc in wait c }
//!
//! main : Unit
//! main =
//!   let (p, q) = new [!IntsQ.End!] in
//!   let _ = fork (\u -> sendAll 4 p) in
//!   sum 0 q
//! "#).expect("type checks");
//!
//! let interp = algst::runtime::Interp::new(&module);
//! interp.run_timeout("main", Duration::from_secs(5)).expect("runs");
//! assert_eq!(interp.output(), vec!["10"]); // 4+3+2+1
//! ```
//!
//! ## Linear-time equivalence
//!
//! ```
//! use algst::{core::types::Type, Session};
//! let mut session = Session::new();
//! let t = Type::dual(Type::input(Type::neg(Type::int()), Type::EndIn));
//! let u = Type::input(Type::int(), Type::EndOut);
//! assert!(session.equivalent(&t, &u));
//! ```

#![deny(missing_docs)]

mod error;
mod pipeline;

pub use error::Error;
pub use pipeline::Pipeline;

pub use algst_core::Session;

pub use algst_check as check;
pub use algst_conform as conform;
pub use algst_core as core;
pub use algst_gen as gen;
pub use algst_obs as obs;
pub use algst_runtime as runtime;
pub use algst_server as server;
pub use algst_syntax as syntax;
pub use freest;
