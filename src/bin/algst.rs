//! The `algst` command-line interface: type check and run AlgST programs,
//! mirroring the paper's artifact (a type checker and an interpreter).
//!
//! ```text
//! algst check FILE.algst            # parse, elaborate, type check
//! algst run FILE.algst              # … then evaluate `main`
//!     [--main NAME]                 # entry point (default: main)
//!     [--async N]                   # bounded channels of capacity N
//!     [--timeout SECS]              # watchdog (default 30)
//!     [--no-prelude]                # without sendInt/receiveInt/…
//! ```

use algst::check::{check_source, check_source_raw};
use algst::runtime::Interp;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: algst <check|run> FILE [--main NAME] [--async N] [--timeout SECS] [--no-prelude]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let Some(file) = args.get(1) else {
        return usage();
    };

    let mut entry = "main".to_owned();
    let mut capacity = 0usize;
    let mut timeout = Duration::from_secs(30);
    let mut prelude = true;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--main" => {
                i += 1;
                entry = match args.get(i) {
                    Some(v) => v.clone(),
                    None => return usage(),
                };
            }
            "--async" => {
                i += 1;
                capacity = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage(),
                };
            }
            "--timeout" => {
                i += 1;
                timeout = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => Duration::from_secs(v),
                    None => return usage(),
                };
            }
            "--no-prelude" => prelude = false,
            _ => return usage(),
        }
        i += 1;
    }

    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let module = match if prelude {
        check_source(&source)
    } else {
        check_source_raw(&source)
    } {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "check" => {
            println!("{file}: ok");
            for (name, _) in module.defs() {
                if let Some(ty) = module.sig(name.as_str()) {
                    println!("  {name} : {ty}");
                }
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let interp = Interp::with_capacity(&module, capacity).echo(true);
            match interp.run_timeout(&entry, timeout) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
