//! The `algst` command-line interface: type check and run AlgST programs
//! (mirroring the paper's artifact), and serve batch equivalence queries
//! as a long-running process.
//!
//! ```text
//! algst check FILE.algst            # parse, elaborate, type check
//! algst run FILE.algst              # … then evaluate `main`
//!     [--main NAME]                 # entry point (default: main)
//!     [--async N]                   # bounded channels of capacity N
//!     [--timeout SECS]              # watchdog (default 30)
//!     [--no-prelude]                # without sendInt/receiveInt/…
//! algst serve                       # JSON-lines service on stdio
//!     [--workers N]                 # worker pool size (default: 4)
//!     [--batch N]                   # max requests per batch (default: 256)
//!     [--listen ADDR]               # TCP instead of stdio, e.g. 127.0.0.1:7878
//!     [--max-conns N]               # concurrent TCP connection cap (default: 64)
//!     [--read-timeout SECS]         # drop a silent client after SECS (default: 30; 0 = never)
//!     [--stats-on-exit]             # print a stats line to stderr at shutdown
//!     [--metrics-listen ADDR]       # Prometheus-style scrape endpoint, e.g. 127.0.0.1:9090
//!     [--log-json FILE]             # structured JSON-lines event log (`-` = stderr)
//!     [--log-level LVL]             # off | error | info | debug (default: info)
//!     [--trace-threshold-us N]      # log a slow_request event at/above N microseconds
//!     [--max-store-bytes N]         # compact the type store above N live bytes (0 = off)
//!     [--compact-interval N]        # compact the type store every N requests (0 = off)
//!     [--multi-tenant]              # route requests by their "tenant" field (isolated engines)
//!     [--max-tenants N]             # live-tenant cap; LRU-evict the coldest (0 = unbounded)
//!     [--tenant-idle-secs SECS]     # evict tenants idle this long (0 = never)
//!     [--tenant-rate N]             # per-tenant request rate limit, req/s (0 = off)
//!     [--tenant-burst N]            # per-tenant rate burst (0 = one second of rate)
//!     [--tenant-inflight N]         # per-tenant in-flight request cap (0 = off)
//!     [--tenant-store-bytes N]      # per-tenant store byte ceiling (0 = --max-store-bytes)
//! algst fuzz                        # cross-layer differential fuzzing
//!     [--iters N]                   # iterations (default: 200)
//!     [--seed N]                    # RNG seed (default: 42)
//!     [--out DIR]                   # failure dir (default: conform-failures)
//!     [--sabotage NAME]             # inject a bug (self-test): reference-dual | reference-neg
//!     [--replay FILE]               # re-run the oracle recorded in a failure file
//!     [--quiet]                     # no progress lines
//! ```
//!
//! `FILE` may be `-` to read the program from stdin. Unknown flags are
//! rejected with a usage error. `fuzz` exits 0 on a clean run and 1
//! when a disagreement was found (minimized counterexamples land in the
//! failure directory); `--replay` exits 1 when the failure reproduces.
//!
//! Any `--tenant-*` or `--max-tenants` flag implies `--multi-tenant`.
//! In multi-tenant mode every tenant gets its own engine over its own
//! store; requests without a `"tenant"` field go to the `default`
//! tenant, and a `{"op":"tenants"}` request lists per-tenant counters.

use algst::obs::{Level, TraceSink};
use algst::runtime::Interp;
use algst::{Pipeline, Session};
use algst_server::{
    serve_metrics, serve_metrics_tenants, serve_stdio, serve_stdio_tenants, serve_tcp,
    serve_tcp_tenants, Engine, ObsOptions, ServeConfig, TenantConfig, TenantQuotas, TenantRegistry,
};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str =
    "usage: algst <check|run> FILE [--main NAME] [--async N] [--timeout SECS] [--no-prelude]
       algst serve [--workers N] [--batch N] [--listen ADDR] [--max-conns N]
                   [--read-timeout SECS] [--stats-on-exit] [--metrics-listen ADDR]
                   [--log-json FILE] [--log-level LVL] [--trace-threshold-us N]
                   [--max-store-bytes N] [--compact-interval N]
                   [--multi-tenant] [--max-tenants N] [--tenant-idle-secs SECS]
                   [--tenant-rate N] [--tenant-burst N] [--tenant-inflight N]
                   [--tenant-store-bytes N]
       algst fuzz [--iters N] [--seed N] [--out DIR] [--sabotage NAME] [--replay FILE] [--quiet]
FILE may be `-` to read from stdin.";

/// Options shared by `check` and `run`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ProgramOpts {
    file: String,
    entry: String,
    capacity: usize,
    timeout: Duration,
    prelude: bool,
}

/// Options for `serve`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ServeOpts {
    workers: usize,
    batch_max: usize,
    listen: Option<String>,
    max_conns: usize,
    read_timeout: Option<Duration>,
    stats_on_exit: bool,
    metrics_listen: Option<String>,
    log_json: Option<String>,
    log_level: Level,
    trace_threshold: Option<Duration>,
    max_store_bytes: u64,
    compact_interval: u64,
    multi_tenant: bool,
    max_tenants: usize,
    tenant_idle: Option<Duration>,
    tenant_rate: u64,
    tenant_burst: u64,
    tenant_inflight: u64,
    tenant_store_bytes: u64,
}

/// Options for `fuzz`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct FuzzOpts {
    iters: u64,
    seed: u64,
    out: String,
    sabotage: algst_conform::Sabotage,
    replay: Option<String>,
    quiet: bool,
}

/// A fully parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Cli {
    Check(ProgramOpts),
    Run(ProgramOpts),
    Serve(ServeOpts),
    Fuzz(FuzzOpts),
}

/// The value of flag `arg` (the next argument), advancing `i` past it.
fn flag_value<'a>(rest: &[&'a String], i: &mut usize, arg: &str) -> Result<&'a String, String> {
    *i += 1;
    rest.get(*i)
        .copied()
        .ok_or_else(|| format!("{arg} requires a value"))
}

/// Parses `argv` (without the program name). Every unknown flag, missing
/// value or malformed number is an error carrying a one-line message.
fn parse_cli(argv: &[String]) -> Result<Cli, String> {
    let mut it = argv.iter();
    let command = it.next().ok_or("missing command")?;
    let rest: Vec<&String> = it.collect();
    match command.as_str() {
        "check" | "run" => {
            let mut opts = ProgramOpts {
                file: String::new(),
                entry: "main".to_owned(),
                capacity: 0,
                timeout: Duration::from_secs(30),
                prelude: true,
            };
            let mut file = None;
            let mut i = 0;
            while i < rest.len() {
                let arg = rest[i].as_str();
                let value = |i: &mut usize| flag_value(&rest, i, arg);
                match arg {
                    "--main" => opts.entry = value(&mut i)?.clone(),
                    "--async" => {
                        opts.capacity = value(&mut i)?
                            .parse()
                            .map_err(|_| "--async takes a non-negative integer".to_owned())?
                    }
                    "--timeout" => {
                        opts.timeout = Duration::from_secs(
                            value(&mut i)?
                                .parse()
                                .map_err(|_| "--timeout takes a number of seconds".to_owned())?,
                        )
                    }
                    "--no-prelude" => opts.prelude = false,
                    flag if flag.starts_with('-') && flag != "-" => {
                        return Err(format!("unknown flag {flag}"))
                    }
                    positional => {
                        if file.replace(positional.to_owned()).is_some() {
                            return Err(format!("unexpected extra argument {positional}"));
                        }
                    }
                }
                i += 1;
            }
            opts.file = file.ok_or("missing FILE (use `-` for stdin)")?;
            Ok(match command.as_str() {
                "check" => Cli::Check(opts),
                _ => Cli::Run(opts),
            })
        }
        "serve" => {
            let mut opts = ServeOpts {
                workers: 4,
                batch_max: 256,
                listen: None,
                max_conns: 64,
                read_timeout: Some(Duration::from_secs(30)),
                stats_on_exit: false,
                metrics_listen: None,
                log_json: None,
                log_level: Level::Info,
                trace_threshold: None,
                max_store_bytes: 0,
                compact_interval: 0,
                multi_tenant: false,
                max_tenants: 0,
                tenant_idle: None,
                tenant_rate: 0,
                tenant_burst: 0,
                tenant_inflight: 0,
                tenant_store_bytes: 0,
            };
            let mut i = 0;
            while i < rest.len() {
                let arg = rest[i].as_str();
                let value = |i: &mut usize| flag_value(&rest, i, arg);
                match arg {
                    "--workers" => {
                        opts.workers = value(&mut i)?
                            .parse()
                            .map_err(|_| "--workers takes a positive integer".to_owned())?;
                        if opts.workers == 0 {
                            return Err("--workers takes a positive integer".into());
                        }
                    }
                    "--batch" => {
                        opts.batch_max = value(&mut i)?
                            .parse()
                            .map_err(|_| "--batch takes a positive integer".to_owned())?;
                        if opts.batch_max == 0 {
                            return Err("--batch takes a positive integer".into());
                        }
                    }
                    "--listen" => opts.listen = Some(value(&mut i)?.clone()),
                    "--max-conns" => {
                        opts.max_conns = value(&mut i)?
                            .parse()
                            .map_err(|_| "--max-conns takes a positive integer".to_owned())?;
                        if opts.max_conns == 0 {
                            return Err("--max-conns takes a positive integer".into());
                        }
                    }
                    "--read-timeout" => {
                        let secs: u64 = value(&mut i)?
                            .parse()
                            .map_err(|_| "--read-timeout takes a number of seconds".to_owned())?;
                        // 0 = never time a client out.
                        opts.read_timeout = (secs > 0).then(|| Duration::from_secs(secs));
                    }
                    "--stats-on-exit" => opts.stats_on_exit = true,
                    "--metrics-listen" => opts.metrics_listen = Some(value(&mut i)?.clone()),
                    "--log-json" => opts.log_json = Some(value(&mut i)?.clone()),
                    "--log-level" => {
                        let name = value(&mut i)?;
                        opts.log_level = Level::parse(name).ok_or_else(|| {
                            format!("unknown log level {name} (use off, error, info or debug)")
                        })?;
                    }
                    "--trace-threshold-us" => {
                        let us: u64 = value(&mut i)?.parse().map_err(|_| {
                            "--trace-threshold-us takes a number of microseconds".to_owned()
                        })?;
                        opts.trace_threshold = Some(Duration::from_micros(us));
                    }
                    "--max-store-bytes" => {
                        opts.max_store_bytes = value(&mut i)?.parse().map_err(|_| {
                            "--max-store-bytes takes a number of bytes (0 = off)".to_owned()
                        })?;
                    }
                    "--compact-interval" => {
                        opts.compact_interval = value(&mut i)?.parse().map_err(|_| {
                            "--compact-interval takes a request count (0 = off)".to_owned()
                        })?;
                    }
                    // Any tenant flag implies multi-tenant mode.
                    "--multi-tenant" => opts.multi_tenant = true,
                    "--max-tenants" => {
                        opts.max_tenants = value(&mut i)?.parse().map_err(|_| {
                            "--max-tenants takes a tenant count (0 = unbounded)".to_owned()
                        })?;
                        opts.multi_tenant = true;
                    }
                    "--tenant-idle-secs" => {
                        let secs: u64 = value(&mut i)?.parse().map_err(|_| {
                            "--tenant-idle-secs takes a number of seconds (0 = never)".to_owned()
                        })?;
                        opts.tenant_idle = (secs > 0).then(|| Duration::from_secs(secs));
                        opts.multi_tenant = true;
                    }
                    "--tenant-rate" => {
                        opts.tenant_rate = value(&mut i)?.parse().map_err(|_| {
                            "--tenant-rate takes requests per second (0 = off)".to_owned()
                        })?;
                        opts.multi_tenant = true;
                    }
                    "--tenant-burst" => {
                        opts.tenant_burst = value(&mut i)?.parse().map_err(|_| {
                            "--tenant-burst takes a token count (0 = one second of rate)".to_owned()
                        })?;
                        opts.multi_tenant = true;
                    }
                    "--tenant-inflight" => {
                        opts.tenant_inflight = value(&mut i)?.parse().map_err(|_| {
                            "--tenant-inflight takes a request count (0 = off)".to_owned()
                        })?;
                        opts.multi_tenant = true;
                    }
                    "--tenant-store-bytes" => {
                        opts.tenant_store_bytes = value(&mut i)?.parse().map_err(|_| {
                            "--tenant-store-bytes takes a number of bytes (0 = --max-store-bytes)"
                                .to_owned()
                        })?;
                        opts.multi_tenant = true;
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            Ok(Cli::Serve(opts))
        }
        "fuzz" => {
            let mut opts = FuzzOpts {
                iters: 200,
                seed: 42,
                out: "conform-failures".to_owned(),
                sabotage: algst_conform::Sabotage::None,
                replay: None,
                quiet: false,
            };
            let mut i = 0;
            while i < rest.len() {
                let arg = rest[i].as_str();
                let value = |i: &mut usize| flag_value(&rest, i, arg);
                match arg {
                    "--iters" => {
                        opts.iters = value(&mut i)?
                            .parse()
                            .map_err(|_| "--iters takes a non-negative integer".to_owned())?
                    }
                    "--seed" => {
                        opts.seed = value(&mut i)?
                            .parse()
                            .map_err(|_| "--seed takes a non-negative integer".to_owned())?
                    }
                    "--out" => opts.out = value(&mut i)?.clone(),
                    "--sabotage" => {
                        let flag = value(&mut i)?;
                        opts.sabotage =
                            algst_conform::Sabotage::from_flag(flag).ok_or_else(|| {
                                format!(
                                    "unknown sabotage {flag} (use reference-dual or reference-neg)"
                                )
                            })?
                    }
                    "--replay" => opts.replay = Some(value(&mut i)?.clone()),
                    "--quiet" => opts.quiet = true,
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            Ok(Cli::Fuzz(opts))
        }
        other => Err(format!("unknown command {other}")),
    }
}

/// Runs the `fuzz` subcommand (or a `--replay`), mapping outcomes to
/// exit codes: 0 = clean, 1 = disagreement found / reproduced.
fn run_fuzz(opts: &FuzzOpts) -> ExitCode {
    if let Some(file) = &opts.replay {
        return match algst_conform::replay_file(std::path::Path::new(file), opts.sabotage) {
            Ok(outcome) => {
                println!(
                    "replay {}: {} — {}",
                    outcome.oracle,
                    if outcome.reproduced {
                        "REPRODUCED"
                    } else {
                        "clean"
                    },
                    outcome.detail
                );
                if outcome.reproduced {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("replay error: {e}");
                ExitCode::from(2)
            }
        };
    }
    let config = algst_conform::FuzzConfig {
        iters: opts.iters,
        seed: opts.seed,
        out_dir: std::path::PathBuf::from(&opts.out),
        sabotage: opts.sabotage,
        quiet: opts.quiet,
        ..algst_conform::FuzzConfig::default()
    };
    let report = algst_conform::run_fuzz(&config);
    println!("algst fuzz (seed {}): {}", opts.seed, report.summary());
    for failure in &report.failures {
        println!(
            "  FAIL {} at iter {}: {}{}",
            failure.oracle,
            failure.iter,
            failure.detail.lines().next().unwrap_or(""),
            failure
                .file
                .as_ref()
                .map(|p| format!(" [{}]", p.display()))
                .unwrap_or_default()
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Reads `FILE`, where `-` means stdin.
fn read_source(file: &str) -> Result<String, String> {
    if file == "-" {
        let mut source = String::new();
        std::io::stdin()
            .read_to_string(&mut source)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(source)
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&argv) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("error: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    match cli {
        Cli::Fuzz(opts) => run_fuzz(&opts),
        Cli::Serve(opts) => {
            // The event sink: JSON lines to a file (or stderr with `-`);
            // without --log-json only metrics are recorded.
            let sink = match opts.log_json.as_deref() {
                None => TraceSink::disabled(),
                Some("-") => TraceSink::to_stderr(opts.log_level),
                Some(path) => match TraceSink::to_file(opts.log_level, path) {
                    Ok(sink) => sink,
                    Err(e) => {
                        eprintln!("serve error: cannot open {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let obs = ObsOptions {
                sink: Arc::new(sink),
                trace_threshold: opts.trace_threshold,
                ..ObsOptions::default()
            };
            let config = ServeConfig {
                batch_max: opts.batch_max,
                stats_on_exit: opts.stats_on_exit,
                max_conns: opts.max_conns,
                read_timeout: opts.read_timeout,
            };
            let served = if opts.multi_tenant {
                // Every tenant engine clones this obs wiring, so one
                // shared registry covers the whole fleet in one scrape.
                let metrics_registry = Arc::clone(&obs.registry);
                let tenants = TenantRegistry::with_sweeper(TenantConfig {
                    workers: opts.workers,
                    obs,
                    quotas: TenantQuotas {
                        max_store_bytes: if opts.tenant_store_bytes > 0 {
                            opts.tenant_store_bytes
                        } else {
                            opts.max_store_bytes
                        },
                        compact_interval: opts.compact_interval,
                        rate_limit: opts.tenant_rate,
                        burst: opts.tenant_burst,
                        max_inflight: opts.tenant_inflight,
                    },
                    max_tenants: opts.max_tenants,
                    idle_timeout: opts.tenant_idle,
                });
                // Keep the scrape endpoint alive for the serve's duration.
                let _metrics = match &opts.metrics_listen {
                    Some(addr) => {
                        match serve_metrics_tenants(addr, metrics_registry, Arc::clone(&tenants)) {
                            Ok(server) => {
                                eprintln!(
                                    "algst serve: metrics on http://{}/metrics",
                                    server.addr()
                                );
                                Some(server)
                            }
                            Err(e) => {
                                eprintln!("serve error: cannot bind metrics on {addr}: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    None => None,
                };
                match &opts.listen {
                    Some(addr) => {
                        eprintln!(
                            "algst serve: listening on {addr} ({} workers per tenant, multi-tenant)",
                            opts.workers
                        );
                        serve_tcp_tenants(&tenants, addr, config)
                    }
                    None => serve_stdio_tenants(&tenants, config),
                }
            } else {
                // The serving store is this process's global session
                // store, so in-process checks (if any) share its warm
                // state; a `Session::new()` here would isolate the
                // service instead.
                let engine = Engine::with_obs(opts.workers, Session::global(), obs);
                engine.set_compaction(opts.max_store_bytes, opts.compact_interval);
                // Keep the scrape endpoint alive for the serve's duration.
                let _metrics = match &opts.metrics_listen {
                    Some(addr) => {
                        let server = serve_metrics(
                            addr,
                            Arc::clone(engine.metrics_registry()),
                            Arc::clone(engine.store()),
                        );
                        match server {
                            Ok(server) => {
                                eprintln!(
                                    "algst serve: metrics on http://{}/metrics",
                                    server.addr()
                                );
                                Some(server)
                            }
                            Err(e) => {
                                eprintln!("serve error: cannot bind metrics on {addr}: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    None => None,
                };
                match &opts.listen {
                    Some(addr) => {
                        eprintln!(
                            "algst serve: listening on {addr} ({} workers)",
                            opts.workers
                        );
                        serve_tcp(&engine, addr, config)
                    }
                    None => serve_stdio(&engine, config),
                }
            };
            match served {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("serve error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Cli::Check(opts) => with_module(&opts, |file, module| {
            println!("{file}: ok");
            for (name, _) in module.defs() {
                if let Some(ty) = module.sig(name.as_str()) {
                    println!("  {name} : {ty}");
                }
            }
            ExitCode::SUCCESS
        }),
        Cli::Run(opts) => {
            let entry = opts.entry.clone();
            let capacity = opts.capacity;
            let timeout = opts.timeout;
            with_module(&opts, |_, module| {
                let interp = Interp::with_capacity(module, capacity).echo(true);
                match interp.run_timeout(&entry, timeout) {
                    Ok(_) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("runtime error: {e}");
                        ExitCode::FAILURE
                    }
                }
            })
        }
    }
}

fn with_module(
    opts: &ProgramOpts,
    then: impl FnOnce(&str, &algst::check::Module) -> ExitCode,
) -> ExitCode {
    let source = match read_source(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let display = if opts.file == "-" {
        "<stdin>"
    } else {
        &opts.file
    };
    // One pipeline (one session) per invocation: the CLI is a regular
    // embedder of the context-first API, like any other.
    let mut pipeline = if opts.prelude {
        Pipeline::new()
    } else {
        Pipeline::new().without_prelude()
    };
    match pipeline.check(&source) {
        Ok(module) => then(display, &module),
        Err(e) => {
            eprintln!("{display}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_check_and_run_with_flags() {
        let cli = parse_cli(&args(&[
            "run",
            "prog.algst",
            "--main",
            "entry",
            "--async",
            "8",
            "--timeout",
            "5",
            "--no-prelude",
        ]))
        .unwrap();
        let Cli::Run(opts) = cli else {
            panic!("expected run")
        };
        assert_eq!(opts.file, "prog.algst");
        assert_eq!(opts.entry, "entry");
        assert_eq!(opts.capacity, 8);
        assert_eq!(opts.timeout, Duration::from_secs(5));
        assert!(!opts.prelude);
        assert!(matches!(
            parse_cli(&args(&["check", "x.algst"])).unwrap(),
            Cli::Check(_)
        ));
    }

    #[test]
    fn flags_may_precede_the_file() {
        let Cli::Check(opts) = parse_cli(&args(&["check", "--main", "go", "x.algst"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(opts.file, "x.algst");
        assert_eq!(opts.entry, "go");
    }

    #[test]
    fn dash_reads_stdin() {
        let Cli::Check(opts) = parse_cli(&args(&["check", "-"])).unwrap() else {
            panic!()
        };
        assert_eq!(opts.file, "-");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        for bad in [
            vec!["check", "x.algst", "--frobnicate"],
            vec!["run", "--async", "2", "--what", "x.algst"],
            vec!["serve", "--listen"],
            vec!["serve", "--nope"],
            vec!["frobnicate", "x.algst"],
        ] {
            let err = parse_cli(&args(&bad)).unwrap_err();
            assert!(
                err.contains("unknown") || err.contains("requires a value"),
                "bad message for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn missing_file_and_extra_file_are_errors() {
        assert!(parse_cli(&args(&["check"])).unwrap_err().contains("FILE"));
        assert!(parse_cli(&args(&["check", "a", "b"]))
            .unwrap_err()
            .contains("extra argument"));
        assert!(parse_cli(&args(&["run", "x", "--main"]))
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_cli(&args(&["run", "x", "--async", "many"]))
            .unwrap_err()
            .contains("integer"));
    }

    #[test]
    fn fuzz_options_parse() {
        let Cli::Fuzz(opts) = parse_cli(&args(&[
            "fuzz",
            "--iters",
            "500",
            "--seed",
            "7",
            "--out",
            "failures",
            "--sabotage",
            "reference-dual",
            "--quiet",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(opts.iters, 500);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.out, "failures");
        assert_eq!(opts.sabotage, algst_conform::Sabotage::ReferenceDual);
        assert!(opts.quiet);
        assert_eq!(opts.replay, None);

        let Cli::Fuzz(defaults) = parse_cli(&args(&["fuzz"])).unwrap() else {
            panic!()
        };
        assert_eq!(defaults.iters, 200);
        assert_eq!(defaults.seed, 42);
        assert_eq!(defaults.out, "conform-failures");
        assert_eq!(defaults.sabotage, algst_conform::Sabotage::None);
        assert!(!defaults.quiet);

        let Cli::Fuzz(replay) = parse_cli(&args(&[
            "fuzz",
            "--replay",
            "conform-failures/case-7.algst",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(
            replay.replay.as_deref(),
            Some("conform-failures/case-7.algst")
        );

        assert!(parse_cli(&args(&["fuzz", "--iters", "many"])).is_err());
        assert!(parse_cli(&args(&["fuzz", "--sabotage", "nope"])).is_err());
        assert!(parse_cli(&args(&["fuzz", "--what"])).is_err());
    }

    #[test]
    fn serve_options_parse() {
        let Cli::Serve(opts) = parse_cli(&args(&[
            "serve",
            "--workers",
            "8",
            "--batch",
            "64",
            "--listen",
            "127.0.0.1:7878",
            "--max-conns",
            "128",
            "--read-timeout",
            "5",
            "--stats-on-exit",
            "--metrics-listen",
            "127.0.0.1:9090",
            "--log-json",
            "trace.jsonl",
            "--log-level",
            "debug",
            "--trace-threshold-us",
            "250",
            "--max-store-bytes",
            "1048576",
            "--compact-interval",
            "100000",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(opts.workers, 8);
        assert_eq!(opts.batch_max, 64);
        assert_eq!(opts.listen.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(opts.max_conns, 128);
        assert_eq!(opts.read_timeout, Some(Duration::from_secs(5)));
        assert!(opts.stats_on_exit);
        assert_eq!(opts.metrics_listen.as_deref(), Some("127.0.0.1:9090"));
        assert_eq!(opts.log_json.as_deref(), Some("trace.jsonl"));
        assert_eq!(opts.log_level, Level::Debug);
        assert_eq!(opts.trace_threshold, Some(Duration::from_micros(250)));
        assert_eq!(opts.max_store_bytes, 1_048_576);
        assert_eq!(opts.compact_interval, 100_000);
        let Cli::Serve(defaults) = parse_cli(&args(&["serve"])).unwrap() else {
            panic!()
        };
        assert_eq!(defaults.workers, 4);
        assert_eq!(defaults.batch_max, 256);
        assert_eq!(defaults.listen, None);
        assert_eq!(defaults.max_conns, 64);
        assert_eq!(defaults.read_timeout, Some(Duration::from_secs(30)));
        assert!(!defaults.stats_on_exit);
        assert_eq!(defaults.metrics_listen, None);
        assert_eq!(defaults.log_json, None);
        assert_eq!(defaults.log_level, Level::Info);
        assert_eq!(defaults.trace_threshold, None);
        assert_eq!(defaults.max_store_bytes, 0);
        assert_eq!(defaults.compact_interval, 0);
        assert!(!defaults.multi_tenant);
        assert_eq!(defaults.max_tenants, 0);
        assert_eq!(defaults.tenant_idle, None);
        assert!(parse_cli(&args(&["serve", "--workers", "0"])).is_err());
        assert!(parse_cli(&args(&["serve", "--max-conns", "0"])).is_err());
        assert!(parse_cli(&args(&["serve", "--read-timeout", "soon"])).is_err());
        assert!(parse_cli(&args(&["serve", "--log-level", "loud"])).is_err());
        assert!(parse_cli(&args(&["serve", "--trace-threshold-us", "slow"])).is_err());
        assert!(parse_cli(&args(&["serve", "--max-store-bytes", "lots"])).is_err());
        assert!(parse_cli(&args(&["serve", "--compact-interval", "often"])).is_err());
        // --read-timeout 0 disables the timeout entirely.
        let Cli::Serve(no_timeout) = parse_cli(&args(&["serve", "--read-timeout", "0"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(no_timeout.read_timeout, None);
    }

    #[test]
    fn tenant_options_parse_and_imply_multi_tenant() {
        let Cli::Serve(opts) = parse_cli(&args(&[
            "serve",
            "--max-tenants",
            "16",
            "--tenant-idle-secs",
            "300",
            "--tenant-rate",
            "1000",
            "--tenant-burst",
            "2000",
            "--tenant-inflight",
            "64",
            "--tenant-store-bytes",
            "8388608",
        ]))
        .unwrap() else {
            panic!()
        };
        assert!(opts.multi_tenant, "tenant flags imply --multi-tenant");
        assert_eq!(opts.max_tenants, 16);
        assert_eq!(opts.tenant_idle, Some(Duration::from_secs(300)));
        assert_eq!(opts.tenant_rate, 1000);
        assert_eq!(opts.tenant_burst, 2000);
        assert_eq!(opts.tenant_inflight, 64);
        assert_eq!(opts.tenant_store_bytes, 8_388_608);

        // --multi-tenant alone: quota-less tenants, unbounded registry.
        let Cli::Serve(bare) = parse_cli(&args(&["serve", "--multi-tenant"])).unwrap() else {
            panic!()
        };
        assert!(bare.multi_tenant);
        assert_eq!(bare.max_tenants, 0);
        assert_eq!(bare.tenant_rate, 0);

        // --tenant-idle-secs 0 disables idle eviction.
        let Cli::Serve(no_idle) = parse_cli(&args(&["serve", "--tenant-idle-secs", "0"])).unwrap()
        else {
            panic!()
        };
        assert!(no_idle.multi_tenant);
        assert_eq!(no_idle.tenant_idle, None);

        assert!(parse_cli(&args(&["serve", "--max-tenants", "many"])).is_err());
        assert!(parse_cli(&args(&["serve", "--tenant-rate"])).is_err());
        assert!(parse_cli(&args(&["serve", "--tenant-store-bytes", "big"])).is_err());
    }
}
