//! [`Pipeline`]: one source unit, end to end, against one [`Session`].
//!
//! Before this facade existed, every embedder (CLI, server, fuzzer,
//! benches) re-implemented its own parse → resolve → elaborate → check
//! plumbing on top of per-crate entry points — and all of it ran
//! against an ambient process-global store. A `Pipeline` packages that
//! plumbing around an **explicit** [`Session`]: construct one per
//! tenant/test/request-stream and everything it interns, normalizes and
//! memoizes stays inside it.

use crate::error::Error;
use algst_check::Module;
use algst_core::types::Type;
use algst_core::Session;
use algst_runtime::Interp;
use algst_syntax::ast::Program;
use algst_syntax::parse_program;
use std::time::Duration;

/// An end-to-end AlgST engine over one owned [`Session`]:
/// `parse → resolve → elaborate → check → equiv` (and optionally `run`),
/// every stage reporting one unified [`enum@Error`].
///
/// ```
/// let mut pipeline = algst::Pipeline::new();
/// let module = pipeline
///     .check("double : Int -> Int\ndouble x = x + x\n\nmain : Unit\nmain = ()")
///     .expect("type checks");
/// assert!(module.sig("double").is_some());
///
/// // The same pipeline answers equivalence queries from source text…
/// assert!(pipeline.equivalent_src("!Int.End!", "Dual (?Int.End?)").unwrap());
/// // …and an independent pipeline shares none of its warm state.
/// let mut other = algst::Pipeline::new();
/// assert!(!pipeline.session().shares_store_with(other.session()));
/// ```
#[derive(Debug)]
pub struct Pipeline {
    session: Session,
    prelude: bool,
}

impl Default for Pipeline {
    fn default() -> Pipeline {
        Pipeline::new()
    }
}

impl Pipeline {
    /// A pipeline over a fresh, private [`Session`] (full isolation),
    /// with the standard prelude (`sendInt`, `receiveInt`, …) enabled.
    pub fn new() -> Pipeline {
        Pipeline::with_session(Session::new())
    }

    /// A pipeline over the process-global session store — for callers
    /// that *want* to share warm state with every other global session
    /// in the process.
    pub fn global() -> Pipeline {
        Pipeline::with_session(Session::global())
    }

    /// A pipeline over a caller-provided session — e.g. a sibling of a
    /// server engine's, so checked signatures warm the serving path.
    pub fn with_session(session: Session) -> Pipeline {
        Pipeline {
            session,
            prelude: true,
        }
    }

    /// Disables the prelude for subsequent [`Pipeline::check`] calls.
    ///
    /// ```
    /// let mut p = algst::Pipeline::new().without_prelude();
    /// // `sendInt` comes from the prelude, so this no longer checks.
    /// let err = p
    ///     .check("f : !Int.End! -> End!\nf c = sendInt [End!] 1 c")
    ///     .unwrap_err();
    /// assert_eq!(err.stage(), "type");
    /// ```
    pub fn without_prelude(mut self) -> Pipeline {
        self.prelude = false;
        self
    }

    /// The session everything in this pipeline runs against.
    pub fn session(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Consumes the pipeline, handing back its session (e.g. to inject
    /// into a server engine).
    pub fn into_session(self) -> Session {
        self.session
    }

    /// Parses a whole module without checking it.
    ///
    /// ```
    /// let pipeline = algst::Pipeline::new();
    /// let ast = pipeline.parse("main : Unit\nmain = ()").unwrap();
    /// assert_eq!(ast.decls.len(), 2);
    /// ```
    pub fn parse(&self, src: &str) -> Result<Program, Error> {
        Ok(parse_program(src)?)
    }

    /// Parses and nominally resolves a standalone type string — the
    /// same resolution the server's `equiv` op applies to request
    /// payloads (unknown applied uppercase names become protocol
    /// references; lowercase names are variables).
    ///
    /// ```
    /// let mut p = algst::Pipeline::new();
    /// let t = p.parse_type("!Int.End!").unwrap();
    /// let u = p.parse_type("Dual (?Int.End?)").unwrap();
    /// assert!(p.equivalent(&t, &u));
    /// ```
    pub fn parse_type(&mut self, src: &str) -> Result<Type, Error> {
        let ty = algst_server::resolve::type_from_str(src).map_err(Error::Resolve)?;
        // Intern eagerly: repeated queries over the same pipeline hit
        // the session memo.
        self.session.intern(&ty);
        Ok(ty)
    }

    /// Parses, elaborates and type-checks a module against this
    /// pipeline's session (with the prelude, unless
    /// [`Pipeline::without_prelude`]).
    pub fn check(&mut self, src: &str) -> Result<Module, Error> {
        let result = if self.prelude {
            algst_check::check_source_in(&mut self.session, src)
        } else {
            algst_check::check_source_raw_in(&mut self.session, src)
        };
        Ok(result?)
    }

    /// Decides `T ≡_A U` through this pipeline's session (linear-time
    /// cold, memoized warm).
    pub fn equivalent(&mut self, t: &Type, u: &Type) -> bool {
        self.session.equivalent(t, u)
    }

    /// [`Pipeline::equivalent`] from source text: parse → resolve →
    /// intern → compare, exactly what the server's `equiv` op does.
    pub fn equivalent_src(&mut self, lhs: &str, rhs: &str) -> Result<bool, Error> {
        let t = self.parse_type(lhs)?;
        let u = self.parse_type(rhs)?;
        Ok(self.equivalent(&t, &u))
    }

    /// Checks `src` and runs `entry` under `timeout`, returning the
    /// program's printed output lines.
    ///
    /// ```
    /// use std::time::Duration;
    /// let mut p = algst::Pipeline::new();
    /// let out = p
    ///     .run(
    ///         "main : Unit\nmain = printInt (2 + 3)",
    ///         "main",
    ///         Duration::from_secs(5),
    ///     )
    ///     .unwrap();
    /// assert_eq!(out, vec!["5"]);
    /// ```
    pub fn run(&mut self, src: &str, entry: &str, timeout: Duration) -> Result<Vec<String>, Error> {
        let module = self.check(src)?;
        let interp = Interp::new(&module);
        interp
            .run_timeout(entry, timeout)
            .map_err(|e| Error::Runtime(e.to_string()))?;
        Ok(interp.output())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelines_are_isolated_by_default() {
        let mut a = Pipeline::new();
        let mut b = Pipeline::new();
        a.check("main : Unit\nmain = ()").unwrap();
        assert!(a.session().stats().nodes > 0);
        assert_eq!(
            b.session().stats().nodes,
            0,
            "b must not see a's elaborated types"
        );
    }

    #[test]
    fn check_reports_type_errors_through_the_unified_error() {
        let mut p = Pipeline::new();
        let err = p.check("main : Int\nmain = ()").unwrap_err();
        assert_eq!(err.stage(), "type");
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn parse_type_rejects_garbage_with_resolve_stage() {
        let mut p = Pipeline::new();
        let err = p.parse_type("!Int.").unwrap_err();
        assert_eq!(err.stage(), "resolve");
    }

    #[test]
    fn session_handoff_to_an_engine_shares_the_store() {
        let mut p = Pipeline::new();
        p.check("main : Unit\nmain = ()").unwrap();
        let nodes_before = p.session().stats().nodes;
        let engine = algst_server::Engine::with_session(1, p.into_session());
        assert_eq!(engine.snapshot().nodes, nodes_before);
    }
}
